#include "obs/journal.h"

#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/run_meta.h"

namespace qimap {
namespace obs {
namespace {

constexpr size_t kDefaultCapacity = 1u << 16;

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_next_run{1};

struct JournalState {
  std::mutex mu;
  std::deque<JournalEvent> events;
  size_t capacity = kDefaultCapacity;
  uint64_t next_id = 1;
  uint64_t recorded = 0;
  uint64_t dropped = 0;
  uint64_t spilled = 0;
  std::FILE* spill = nullptr;
  std::string spill_path;

  static JournalState& Get() {
    // Leaked on purpose: the journal must outlive static destructors.
    static JournalState* state = new JournalState;
    return *state;
  }
};

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendIdArray(std::string* out, const char* key,
                   const std::vector<uint64_t>& ids) {
  if (ids.empty()) return;
  *out += ",\"";
  *out += key;
  *out += "\":[";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += std::to_string(ids[i]);
  }
  out->push_back(']');
}

// Mirrors journal activity into the metrics registry (`journal.*`).
void CountEvent(const JournalEvent& event) {
  static const MetricId kEvents = RegisterCounter("journal.events");
  static const MetricId kBase = RegisterCounter("journal.base_facts");
  static const MetricId kFacts = RegisterCounter("journal.derived_facts");
  static const MetricId kNulls = RegisterCounter("journal.nulls_minted");
  static const MetricId kMerges = RegisterCounter("journal.merges");
  static const MetricId kRules = RegisterCounter("journal.rules");
  static const MetricId kBudget =
      RegisterCounter("journal.budget_trips");
  static const MetricId kParents =
      RegisterHistogram("journal.parents_per_fact");
  CounterAdd(kEvents);
  switch (event.kind) {
    case JournalEventKind::kBaseFact:
      CounterAdd(kBase);
      break;
    case JournalEventKind::kDerivedFact:
      CounterAdd(kFacts);
      HistogramRecord(kParents, event.parents.size());
      break;
    case JournalEventKind::kNullMinted:
      CounterAdd(kNulls);
      break;
    case JournalEventKind::kEgdMerge:
      CounterAdd(kMerges);
      break;
    case JournalEventKind::kRuleEmitted:
      CounterAdd(kRules);
      break;
    case JournalEventKind::kBudgetTrip:
      CounterAdd(kBudget);
      break;
    case JournalEventKind::kCacheEvent: {
      static const MetricId kCache = RegisterCounter("journal.cache_events");
      CounterAdd(kCache);
      break;
    }
  }
}

// The run-metadata header every journal file starts with: a JSONL line
// that is an object with a "meta" key and no "id", so consumers can tell
// it apart from events.
std::string MetaHeaderLine() {
  return "{\"meta\":" + RunMetaJson() + "}\n";
}

// Closes the spill file and publishes it: the spill is written to
// `<path>.tmp` and renamed into place on close, so readers never observe
// a half-written journal. Caller holds the mutex. False on I/O failure
// (the temp file is removed).
bool CloseSpill(JournalState& state) {
  if (state.spill == nullptr) return true;
  bool ok = std::fclose(state.spill) == 0;
  state.spill = nullptr;
  std::string tmp = state.spill_path + ".tmp";
  if (ok) {
    ok = std::rename(tmp.c_str(), state.spill_path.c_str()) == 0;
  }
  if (!ok) std::remove(tmp.c_str());
  state.spill_path.clear();
  return ok;
}

// Writes one event line to the spill file; caller holds the mutex.
bool SpillOne(JournalState& state, const JournalEvent& event) {
  std::string line = event.ToJson();
  line.push_back('\n');
  if (std::fwrite(line.data(), 1, line.size(), state.spill) !=
      line.size()) {
    return false;
  }
  ++state.spilled;
  return true;
}

// Drains the buffer into the spill file; caller holds the mutex.
bool SpillAll(JournalState& state) {
  static const MetricId kSpilled = RegisterCounter("journal.spilled");
  bool ok = true;
  size_t drained = 0;
  while (!state.events.empty()) {
    ok = SpillOne(state, state.events.front()) && ok;
    state.events.pop_front();
    ++drained;
  }
  if (drained > 0) {
    CounterAdd(kSpilled, drained);
    std::fflush(state.spill);
  }
  return ok;
}

}  // namespace

const char* JournalEventKindName(JournalEventKind kind) {
  switch (kind) {
    case JournalEventKind::kBaseFact:
      return "base";
    case JournalEventKind::kDerivedFact:
      return "fact";
    case JournalEventKind::kNullMinted:
      return "null";
    case JournalEventKind::kEgdMerge:
      return "merge";
    case JournalEventKind::kRuleEmitted:
      return "rule";
    case JournalEventKind::kBudgetTrip:
      return "budget";
    case JournalEventKind::kCacheEvent:
      return "cache";
  }
  return "unknown";
}

std::string JournalEvent::ToJson() const {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"kind\":\"";
  out += JournalEventKindName(kind);
  out += "\",\"run\":" + std::to_string(run) + ",\"pipeline\":";
  AppendEscaped(&out, pipeline);
  out += ",\"fact\":";
  AppendEscaped(&out, fact);
  if (!dependency.empty()) {
    out += ",\"dep\":";
    AppendEscaped(&out, dependency);
  }
  if (dep_index >= 0) {
    out += ",\"dep_index\":" + std::to_string(dep_index);
  }
  if (!bindings.empty()) {
    out += ",\"bindings\":";
    AppendEscaped(&out, bindings);
  }
  AppendIdArray(&out, "parents", parents);
  AppendIdArray(&out, "nulls", nulls);
  if (disjunct >= 0) {
    out += ",\"disjunct\":" + std::to_string(disjunct);
  }
  if (node != 0) {
    out += ",\"node\":" + std::to_string(node);
  }
  out.push_back('}');
  return out;
}

void Journal::Enable() {
  g_enabled.store(true, std::memory_order_relaxed);
}

void Journal::Disable() {
  g_enabled.store(false, std::memory_order_relaxed);
}

bool Journal::Enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void Journal::Clear() {
  JournalState& state = JournalState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.clear();
  state.recorded = 0;
  state.dropped = 0;
  state.spilled = 0;
  CloseSpill(state);
}

void Journal::SetCapacity(size_t capacity) {
  JournalState& state = JournalState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  state.capacity = capacity > 0 ? capacity : 1;
}

bool Journal::SetSpillPath(const std::string& path) {
  JournalState& state = JournalState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  // Finalizes (renames into place) any previous spill file first.
  bool closed = CloseSpill(state);
  if (path.empty()) return closed;
  std::string tmp = path + ".tmp";
  state.spill = std::fopen(tmp.c_str(), "wb");
  if (state.spill == nullptr) return false;
  state.spill_path = path;
  // Run-metadata header as the first JSONL line.
  std::string header = MetaHeaderLine();
  if (std::fwrite(header.data(), 1, header.size(), state.spill) !=
      header.size()) {
    std::fclose(state.spill);
    state.spill = nullptr;
    std::remove(tmp.c_str());
    state.spill_path.clear();
    return false;
  }
  return true;
}

bool Journal::Flush() {
  JournalState& state = JournalState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.spill == nullptr) return true;
  return SpillAll(state);
}

size_t Journal::NumEvents() {
  JournalState& state = JournalState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.events.size();
}

uint64_t Journal::NumRecorded() {
  JournalState& state = JournalState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.recorded;
}

uint64_t Journal::NumDropped() {
  JournalState& state = JournalState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.dropped;
}

uint64_t Journal::NumSpilled() {
  JournalState& state = JournalState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.spilled;
}

std::vector<JournalEvent> Journal::Events() {
  JournalState& state = JournalState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  return {state.events.begin(), state.events.end()};
}

std::string Journal::ToJsonl() {
  JournalState& state = JournalState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  std::string out;
  for (const JournalEvent& event : state.events) {
    out += event.ToJson();
    out.push_back('\n');
  }
  return out;
}

bool Journal::WriteJsonl(const std::string& path) {
  // Run-metadata header first, then the events; temp + rename so readers
  // never observe a partially written journal.
  return WriteFileAtomic(path, MetaHeaderLine() + ToJsonl());
}

namespace internal {

bool JournalEnabled() { return Journal::Enabled(); }

uint64_t NextRunId() {
  return g_next_run.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Append(JournalEvent event) {
  static const MetricId kDropped = RegisterCounter("journal.dropped");
  JournalState& state = JournalState::Get();
  std::lock_guard<std::mutex> lock(state.mu);
  event.id = state.next_id++;
  ++state.recorded;
  CountEvent(event);
  if (state.events.size() >= state.capacity) {
    if (state.spill != nullptr) {
      SpillAll(state);
    } else {
      state.events.pop_front();
      ++state.dropped;
      CounterAdd(kDropped);
    }
  }
  uint64_t id = event.id;
  state.events.push_back(std::move(event));
  return id;
}

}  // namespace internal

#if !defined(QIMAP_OBS_DISABLE_PROVENANCE)

uint64_t JournalRun::RecordBaseFact(const std::string& fact) {
  if (!active_) return 0;
  auto it = fact_ids_.find(fact);
  if (it != fact_ids_.end()) return it->second;
  JournalEvent event;
  event.kind = JournalEventKind::kBaseFact;
  event.run = run_;
  event.pipeline = pipeline_;
  event.fact = fact;
  uint64_t id = internal::Append(std::move(event));
  fact_ids_.emplace(fact, id);
  return id;
}

uint64_t JournalRun::RecordDerivedFact(const std::string& fact,
                                       const std::string& dependency,
                                       int32_t dep_index,
                                       const std::string& bindings,
                                       std::vector<uint64_t> parents,
                                       std::vector<uint64_t> nulls,
                                       int32_t disjunct, uint64_t node) {
  if (!active_) return 0;
  JournalEvent event;
  event.kind = JournalEventKind::kDerivedFact;
  event.run = run_;
  event.pipeline = pipeline_;
  event.fact = fact;
  event.dependency = dependency;
  event.dep_index = dep_index;
  event.bindings = bindings;
  event.parents = std::move(parents);
  event.nulls = std::move(nulls);
  event.disjunct = disjunct;
  event.node = node;
  uint64_t id = internal::Append(std::move(event));
  fact_ids_.emplace(fact, id);  // first writer wins
  return id;
}

uint64_t JournalRun::RecordNull(const std::string& null_text,
                                const std::string& variable,
                                const std::string& dependency,
                                int32_t dep_index, uint64_t node) {
  if (!active_) return 0;
  JournalEvent event;
  event.kind = JournalEventKind::kNullMinted;
  event.run = run_;
  event.pipeline = pipeline_;
  event.fact = null_text;
  event.dependency = dependency;
  event.dep_index = dep_index;
  event.bindings = variable;
  event.node = node;
  return internal::Append(std::move(event));
}

uint64_t JournalRun::RecordMerge(const std::string& kept,
                                 const std::string& dropped,
                                 const std::string& dependency,
                                 int32_t dep_index,
                                 const std::string& bindings) {
  if (!active_) return 0;
  JournalEvent event;
  event.kind = JournalEventKind::kEgdMerge;
  event.run = run_;
  event.pipeline = pipeline_;
  event.fact = dropped + " -> " + kept;
  event.dependency = dependency;
  event.dep_index = dep_index;
  event.bindings = bindings;
  return internal::Append(std::move(event));
}

uint64_t JournalRun::RecordRule(const std::string& rule,
                                const std::string& dependency,
                                int32_t dep_index,
                                const std::string& bindings,
                                std::vector<uint64_t> parents) {
  if (!active_) return 0;
  JournalEvent event;
  event.kind = JournalEventKind::kRuleEmitted;
  event.run = run_;
  event.pipeline = pipeline_;
  event.fact = rule;
  event.dependency = dependency;
  event.dep_index = dep_index;
  event.bindings = bindings;
  event.parents = std::move(parents);
  return internal::Append(std::move(event));
}

uint64_t JournalRun::RecordBudget(const std::string& message,
                                  const std::string& limit,
                                  const std::string& usage) {
  if (!active_) return 0;
  JournalEvent event;
  event.kind = JournalEventKind::kBudgetTrip;
  event.run = run_;
  event.pipeline = pipeline_;
  event.fact = message;
  event.dependency = limit;
  event.bindings = usage;
  return internal::Append(std::move(event));
}

uint64_t JournalRun::RecordCache(const std::string& message,
                                 const std::string& cache,
                                 const std::string& key) {
  if (!active_) return 0;
  JournalEvent event;
  event.kind = JournalEventKind::kCacheEvent;
  event.run = run_;
  event.pipeline = pipeline_;
  event.fact = message;
  event.dependency = cache;
  event.bindings = key;
  return internal::Append(std::move(event));
}

uint64_t JournalRun::IdForFact(const std::string& fact) const {
  auto it = fact_ids_.find(fact);
  return it != fact_ids_.end() ? it->second : 0;
}

#endif  // !QIMAP_OBS_DISABLE_PROVENANCE

namespace {

// Builds the tree rooted at `event_id` from the id-indexed events.
DerivationNode BuildNode(
    const std::unordered_map<uint64_t, const JournalEvent*>& by_id,
    uint64_t event_id) {
  DerivationNode node;
  auto it = by_id.find(event_id);
  if (it == by_id.end()) {
    // Unresolvable parent (spilled out of the buffer): leave a stub whose
    // id says what was lost.
    node.event.id = event_id;
    node.event.fact = "<unavailable>";
    return node;
  }
  node.event = *it->second;
  for (uint64_t parent : node.event.parents) {
    // Parent ids are always smaller than the event id, so the recursion
    // terminates.
    node.parents.push_back(BuildNode(by_id, parent));
  }
  for (uint64_t null_id : node.event.nulls) {
    auto null_it = by_id.find(null_id);
    if (null_it != by_id.end()) {
      node.minted_nulls.push_back(*null_it->second);
    }
  }
  return node;
}

void AppendTreeJson(std::string* out, const DerivationNode& node) {
  *out += "{\"fact\":";
  AppendEscaped(out, node.event.fact);
  *out += ",\"event\":" + std::to_string(node.event.id);
  *out += ",\"kind\":\"";
  *out += JournalEventKindName(node.event.kind);
  *out += "\",\"base\":";
  *out += node.event.kind == JournalEventKind::kBaseFact ? "true" : "false";
  if (!node.event.dependency.empty()) {
    *out += ",\"dependency\":";
    AppendEscaped(out, node.event.dependency);
  }
  if (node.event.dep_index >= 0) {
    *out += ",\"dep_index\":" + std::to_string(node.event.dep_index);
  }
  if (!node.event.bindings.empty()) {
    *out += ",\"bindings\":";
    AppendEscaped(out, node.event.bindings);
  }
  if (node.event.disjunct >= 0) {
    *out += ",\"disjunct\":" + std::to_string(node.event.disjunct);
  }
  if (!node.minted_nulls.empty()) {
    *out += ",\"nulls\":[";
    for (size_t i = 0; i < node.minted_nulls.size(); ++i) {
      if (i > 0) out->push_back(',');
      *out += "{\"null\":";
      AppendEscaped(out, node.minted_nulls[i].fact);
      *out += ",\"for\":";
      AppendEscaped(out, node.minted_nulls[i].bindings);
      out->push_back('}');
    }
    out->push_back(']');
  }
  if (!node.parents.empty()) {
    *out += ",\"parents\":[";
    for (size_t i = 0; i < node.parents.size(); ++i) {
      if (i > 0) out->push_back(',');
      AppendTreeJson(out, node.parents[i]);
    }
    out->push_back(']');
  }
  out->push_back('}');
}

void AppendTreeText(std::string* out, const DerivationNode& node,
                    const std::string& prefix, bool last, bool root) {
  if (root) {
    *out += node.event.fact;
  } else {
    *out += prefix + (last ? "└─ " : "├─ ") + node.event.fact;
  }
  if (node.event.kind == JournalEventKind::kBaseFact) {
    *out += "  (input)";
  } else if (!node.event.dependency.empty()) {
    *out += "  [via " + node.event.dependency;
    if (!node.event.bindings.empty()) {
      *out += " with " + node.event.bindings;
    }
    if (node.event.disjunct >= 0) {
      *out += ", disjunct " + std::to_string(node.event.disjunct);
    }
    *out += "]";
  }
  for (const JournalEvent& null_event : node.minted_nulls) {
    *out += "  {" + null_event.fact + " for " + null_event.bindings + "}";
  }
  out->push_back('\n');
  std::string child_prefix =
      root ? std::string("") : prefix + (last ? "   " : "│  ");
  for (size_t i = 0; i < node.parents.size(); ++i) {
    AppendTreeText(out, node.parents[i], child_prefix,
                   i + 1 == node.parents.size(), false);
  }
}

}  // namespace

std::optional<DerivationNode> ExplainFact(
    const std::vector<JournalEvent>& events, const std::string& fact) {
  std::unordered_map<uint64_t, const JournalEvent*> by_id;
  by_id.reserve(events.size());
  for (const JournalEvent& event : events) by_id.emplace(event.id, &event);
  for (const JournalEvent& event : events) {
    if (event.fact != fact) continue;
    if (event.kind != JournalEventKind::kBaseFact &&
        event.kind != JournalEventKind::kDerivedFact) {
      continue;
    }
    return BuildNode(by_id, event.id);
  }
  return std::nullopt;
}

std::string DerivationToJson(const DerivationNode& node) {
  std::string out;
  AppendTreeJson(&out, node);
  return out;
}

std::string DerivationToText(const DerivationNode& node) {
  std::string out;
  AppendTreeText(&out, node, "", true, true);
  return out;
}

}  // namespace obs
}  // namespace qimap
