#include "obs/progress.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "base/budget.h"
#include "obs/metrics.h"
#include "obs/run_meta.h"

namespace qimap {
namespace obs {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_seq{0};

// The process-wide configuration plus the lazily opened JSONL stream.
// Guarded by one mutex: heartbeats are emitted from serial engine loops,
// so this lock is uncontended; it exists so concurrent pipelines (the
// parallel-chase tests run engines on worker threads) never interleave
// stream writes.
std::mutex g_mu;
ProgressConfig g_config;
std::FILE* g_stream = nullptr;
bool g_stream_failed = false;

uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void CloseStreamLocked() {
  if (g_stream != nullptr) {
    std::fclose(g_stream);
    g_stream = nullptr;
  }
  g_stream_failed = false;
}

bool StderrIsTty() {
  if (std::getenv("QIMAP_PROGRESS_FORCE_TTY") != nullptr) return true;
  return isatty(fileno(stderr)) != 0;
}

void AppendUint(std::string* out, const char* key, uint64_t value,
                bool first = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\": %" PRIu64, first ? "" : ", ",
                key, value);
  *out += buf;
}

}  // namespace

std::string ProgressSnapshot::ToJson(bool canonical) const {
  std::string out = "{";
  AppendUint(&out, "seq", seq, /*first=*/true);
  out += ", \"pipeline\": \"" + pipeline + "\"";
  out += std::string(", \"final\": ") + (is_final ? "true" : "false");
  AppendUint(&out, "steps", steps);
  AppendUint(&out, "facts", facts);
  AppendUint(&out, "nulls", nulls);
  AppendUint(&out, "fired", fired);
  AppendUint(&out, "skipped", skipped);
  AppendUint(&out, "total_estimate", total_estimate);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ", \"budget_fraction\": %.6f",
                budget_fraction);
  out += buf;
  if (!canonical) {
    AppendUint(&out, "elapsed_us", elapsed_us);
    AppendUint(&out, "eta_us", eta_us);
  }
  out += "}";
  return out;
}

std::string ProgressSnapshot::ToLine() const {
  std::string out = "[progress] ";
  out += pipeline;
  char buf[128];
  if (total_estimate > 0 && steps <= total_estimate) {
    std::snprintf(buf, sizeof(buf),
                  " steps=%" PRIu64 "/%" PRIu64 " (%d%%)", steps,
                  total_estimate,
                  static_cast<int>(100.0 * static_cast<double>(steps) /
                                   static_cast<double>(total_estimate)));
  } else {
    std::snprintf(buf, sizeof(buf), " steps=%" PRIu64, steps);
  }
  out += buf;
  std::snprintf(buf, sizeof(buf),
                " facts=%" PRIu64 " nulls=%" PRIu64 " fired=%" PRIu64
                " skipped=%" PRIu64,
                facts, nulls, fired, skipped);
  out += buf;
  if (budget_fraction >= 0.0) {
    std::snprintf(buf, sizeof(buf), " budget=%d%%",
                  static_cast<int>(100.0 * budget_fraction));
    out += buf;
  }
  if (is_final) {
    std::snprintf(buf, sizeof(buf), " done in %.3fs",
                  static_cast<double>(elapsed_us) / 1e6);
    out += buf;
  } else if (eta_us > 0) {
    std::snprintf(buf, sizeof(buf), " eta=%.1fs",
                  static_cast<double>(eta_us) / 1e6);
    out += buf;
  }
  return out;
}

void Progress::Enable() {
  if (std::getenv("QIMAP_OBS_DISABLE_PROGRESS") != nullptr) return;
  g_enabled.store(true, std::memory_order_relaxed);
}

void Progress::Disable() {
  g_enabled.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_mu);
  CloseStreamLocked();
}

bool Progress::Enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void Progress::Configure(const ProgressConfig& config) {
  std::lock_guard<std::mutex> lock(g_mu);
  CloseStreamLocked();
  g_config = config;
  if (g_config.interval == 0) g_config.interval = 1;
}

void Progress::Reset() {
  g_enabled.store(false, std::memory_order_relaxed);
  g_seq.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_mu);
  CloseStreamLocked();
  g_config = ProgressConfig{};
}

void Progress::CloseStream() {
  std::lock_guard<std::mutex> lock(g_mu);
  CloseStreamLocked();
}

namespace internal {

ProgressConfig& ProgressConfigRef() { return g_config; }

uint64_t NextProgressSeq() {
  return g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t ProgressNowUs() {
  std::function<uint64_t()> clock;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    clock = g_config.clock;
  }
  return clock ? clock() : SteadyNowUs();
}

void EmitProgress(const ProgressSnapshot& snap) {
  static const MetricId kHeartbeats = RegisterCounter("progress.heartbeats");
  CounterAdd(kHeartbeats);

  std::function<void(const ProgressSnapshot&)> sink;
  bool to_stderr = false;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    sink = g_config.sink;
    to_stderr =
        g_config.stderr_line && (g_config.force_tty || StderrIsTty());
    if (!g_config.jsonl_path.empty() && !g_stream_failed) {
      if (g_stream == nullptr) {
        g_stream = std::fopen(g_config.jsonl_path.c_str(), "wb");
        if (g_stream == nullptr) {
          g_stream_failed = true;
        } else {
          std::string header = "{\"meta\": " + RunMetaJson() + "}\n";
          std::fwrite(header.data(), 1, header.size(), g_stream);
        }
      }
      if (g_stream != nullptr) {
        std::string line = snap.ToJson(/*canonical=*/false) + "\n";
        std::fwrite(line.data(), 1, line.size(), g_stream);
        std::fflush(g_stream);
      }
    }
  }
  if (to_stderr) {
    std::string line = "\r" + snap.ToLine();
    if (snap.is_final) line += "\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (sink) sink(snap);
}

}  // namespace internal

ProgressRun::ProgressRun(const char* pipeline, Sampler sampler,
                         const Budget* budget) {
  if (!Progress::Enabled()) return;
  active_ = true;
  pipeline_ = pipeline;
  sampler_ = std::move(sampler);
  budget_ = budget;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    interval_ = g_config.interval == 0 ? 1 : g_config.interval;
  }
  start_us_ = internal::ProgressNowUs();
}

ProgressRun::~ProgressRun() {
  if (active_) Emit(/*is_final=*/true);
}

void ProgressRun::Emit(bool is_final) {
  ProgressSnapshot snap;
  snap.seq = internal::NextProgressSeq();
  snap.pipeline = pipeline_;
  snap.is_final = is_final;
  snap.steps = steps_;
  if (sampler_) {
    ProgressSample sample = sampler_();
    snap.facts = sample.facts;
    snap.nulls = sample.nulls;
    snap.fired = sample.fired;
    snap.skipped = sample.skipped;
  }
  snap.total_estimate = total_estimate_;
  if (budget_ != nullptr) {
    // Largest consumed fraction over the bounded *counter* limits only;
    // the deadline is timing and stays out of canonical snapshots.
    const BudgetSpec& spec = budget_->spec();
    double fraction = -1.0;
    auto consider = [&fraction](size_t used, size_t limit) {
      if (limit == 0) return;
      double f = static_cast<double>(used) / static_cast<double>(limit);
      if (f > 1.0) f = 1.0;
      if (f > fraction) fraction = f;
    };
    consider(budget_->steps(), spec.max_steps);
    consider(budget_->nulls(), spec.max_nulls);
    consider(budget_->memory_bytes(), spec.max_memory_bytes);
    snap.budget_fraction = fraction;
  }
  uint64_t now_us = internal::ProgressNowUs();
  snap.elapsed_us = now_us >= start_us_ ? now_us - start_us_ : 0;
  if (total_estimate_ > 0 && steps_ > 0 && steps_ < total_estimate_) {
    snap.eta_us = snap.elapsed_us * (total_estimate_ - steps_) / steps_;
  }
  internal::EmitProgress(snap);
}

}  // namespace obs
}  // namespace qimap
