#include "obs/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "base/status.h"
#include "base/thread_pool.h"

namespace qimap {
namespace obs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "?";
}

void LogStatusError(StatusCode code, const std::string& message) {
  Log(LogLevel::kDebug, "status %s: %s", StatusCodeName(code),
      message.c_str());
}

void LogThreadConfigWarning(const char* message) {
  Log(LogLevel::kWarn, "%s", message);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel CurrentLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <=
         g_level.load(std::memory_order_relaxed);
}

void Log(LogLevel level, const char* format, ...) {
  if (!LogEnabled(level)) return;
  std::fprintf(stderr, "[qimap:%s] ", LevelName(level));
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
}

void InstallStatusLogging() {
  SetStatusErrorHook(&LogStatusError);
  SetThreadConfigWarningHook(&LogThreadConfigWarning);
}

}  // namespace obs
}  // namespace qimap
