#include "obs/json.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace qimap {
namespace obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    QIMAP_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    JsonValue value;
    if (ConsumeWord("true")) {
      value.type = JsonValue::Type::kBool;
      value.bool_value = true;
      return value;
    }
    if (ConsumeWord("false")) {
      value.type = JsonValue::Type::kBool;
      return value;
    }
    if (ConsumeWord("null")) return value;
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    while (true) {
      SkipWhitespace();
      QIMAP_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      QIMAP_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.members.emplace_back(std::move(key.string_value),
                                 std::move(member));
      SkipWhitespace();
      if (Consume('}')) return value;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    while (true) {
      QIMAP_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      value.items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return value;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  /// Reads exactly four hex digits at pos_ into `out`. False (without
  /// consuming) when fewer than four remain or any is not a hex digit.
  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t code = 0;
    for (size_t i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A') + 10;
      } else {
        return false;
      }
      code = (code << 4) | digit;
    }
    pos_ += 4;
    *out = code;
    return true;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  /// Decodes a `\uXXXX` escape (the `\u` already consumed) to UTF-8,
  /// including surrogate pairs: a high surrogate must be followed by a
  /// `\u`-escaped low surrogate, and unpaired surrogates are rejected.
  Status ParseUnicodeEscape(std::string* out) {
    uint32_t code;
    if (!ParseHex4(&code)) {
      return Error("\\u escape needs four hex digits");
    }
    if (code >= 0xDC00 && code <= 0xDFFF) {
      return Error("unpaired low surrogate in \\u escape");
    }
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        return Error("high surrogate not followed by \\u escape");
      }
      pos_ += 2;
      uint32_t low;
      if (!ParseHex4(&low)) {
        return Error("\\u escape needs four hex digits");
      }
      if (low < 0xDC00 || low > 0xDFFF) {
        return Error("high surrogate not followed by low surrogate");
      }
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    }
    AppendUtf8(code, out);
    return Status::OK();
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.string_value.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          value.string_value.push_back(esc);
          break;
        case 'n':
          value.string_value.push_back('\n');
          break;
        case 't':
          value.string_value.push_back('\t');
          break;
        case 'r':
          value.string_value.push_back('\r');
          break;
        case 'b':
          value.string_value.push_back('\b');
          break;
        case 'f':
          value.string_value.push_back('\f');
          break;
        case 'u': {
          QIMAP_RETURN_IF_ERROR(ParseUnicodeEscape(&value.string_value));
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  /// RFC 8259 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  /// strtod alone accepts a superset ("1.", "01", ".5", "0x1", "inf"), so
  /// the token is validated against the grammar before conversion.
  static bool IsStrictJsonNumber(std::string_view token) {
    size_t i = 0;
    auto digit = [&](size_t at) {
      return at < token.size() &&
             std::isdigit(static_cast<unsigned char>(token[at]));
    };
    if (i < token.size() && token[i] == '-') ++i;
    if (!digit(i)) return false;
    if (token[i] == '0') {
      ++i;  // a leading zero must stand alone
    } else {
      while (digit(i)) ++i;
    }
    if (i < token.size() && token[i] == '.') {
      ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
      ++i;
      if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    return i == token.size();
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    (void)Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    if (!IsStrictJsonNumber(token)) {
      return Error("malformed number '" + token + "'");
    }
    char* end = nullptr;
    double parsed = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number_value = parsed;
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  return ParseJson(contents);
}

}  // namespace obs
}  // namespace qimap
