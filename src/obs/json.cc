#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace qimap {
namespace obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    QIMAP_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    JsonValue value;
    if (ConsumeWord("true")) {
      value.type = JsonValue::Type::kBool;
      value.bool_value = true;
      return value;
    }
    if (ConsumeWord("false")) {
      value.type = JsonValue::Type::kBool;
      return value;
    }
    if (ConsumeWord("null")) return value;
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    while (true) {
      SkipWhitespace();
      QIMAP_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      QIMAP_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.members.emplace_back(std::move(key.string_value),
                                 std::move(member));
      SkipWhitespace();
      if (Consume('}')) return value;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    while (true) {
      QIMAP_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      value.items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return value;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.string_value.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          value.string_value.push_back(esc);
          break;
        case 'n':
          value.string_value.push_back('\n');
          break;
        case 't':
          value.string_value.push_back('\t');
          break;
        case 'r':
          value.string_value.push_back('\r');
          break;
        case 'b':
          value.string_value.push_back('\b');
          break;
        case 'f':
          value.string_value.push_back('\f');
          break;
        case 'u':
          // Pass the escape through undecoded; validation callers only
          // care about well-formedness.
          value.string_value += "\\u";
          break;
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    (void)Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double parsed = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number_value = parsed;
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  return ParseJson(contents);
}

}  // namespace obs
}  // namespace qimap
