#ifndef QIMAP_OBS_LOG_H_
#define QIMAP_OBS_LOG_H_

namespace qimap {
namespace obs {

/// Leveled stderr logging. Default level is kWarn so the library stays
/// quiet; `qimap_cli --verbose` raises it to kDebug.
enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

void SetLogLevel(LogLevel level);
LogLevel CurrentLogLevel();
bool LogEnabled(LogLevel level);

/// Prints `[qimap:<level>] <message>\n` to stderr when `level` is at or
/// below the current level. printf-style.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void Log(LogLevel level, const char* format, ...);

/// Routes every non-OK Status constructed by the library to Log() at
/// kDebug via the base-layer hook (base/status.h), so `--verbose` shows
/// errors where they originate rather than where they surface. Also
/// routes base-layer thread-configuration warnings (base/thread_pool.h)
/// to Log() at kWarn.
void InstallStatusLogging();

}  // namespace obs
}  // namespace qimap

#endif  // QIMAP_OBS_LOG_H_
