#ifndef QIMAP_OBS_TRACE_H_
#define QIMAP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace qimap {
namespace obs {

/// One completed span (a Chrome trace-event "X" complete event).
/// Timestamps are microseconds since the recorder's epoch.
struct TraceEvent {
  std::string name;
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;
};

/// Process-wide trace recorder. Disabled by default: a disabled span
/// costs one relaxed atomic load and nothing else. When enabled, span
/// destructors append complete events to a bounded in-memory buffer that
/// exports as Chrome trace-event JSON — load the file in chrome://tracing
/// or https://ui.perfetto.dev.
class Trace {
 public:
  static void Enable();
  static void Disable();
  static bool Enabled();
  /// Drops all buffered events (and the dropped-event count).
  static void Clear();
  static size_t NumEvents();
  /// Copies the buffered events, oldest first (test hook).
  static std::vector<TraceEvent> Events();
  /// Renders the Chrome trace-event JSON document.
  static std::string ToJson();
  /// Writes ToJson() to `path`; false on I/O failure.
  static bool WriteJson(const std::string& path);
};

namespace internal {
bool TracingEnabled();
void RecordCompleteEvent(const char* name,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end);
}  // namespace internal

/// RAII span: records a complete event for its scope when tracing is
/// enabled. Use through QIMAP_TRACE_SPAN rather than directly. Span names
/// are `<subsystem>/<operation>` (e.g. "chase/standard", "mingen/search");
/// see docs/observability.md.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (internal::TracingEnabled()) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (name_ != nullptr) {
      internal::RecordCompleteEvent(name_, start_,
                                    std::chrono::steady_clock::now());
    }
  }

 private:
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

#define QIMAP_OBS_CONCAT_INNER(a, b) a##b
#define QIMAP_OBS_CONCAT(a, b) QIMAP_OBS_CONCAT_INNER(a, b)

// Compile out entirely with -DQIMAP_OBS_DISABLE_TRACING (the runtime
// default is already off; this removes even the atomic load).
#if defined(QIMAP_OBS_DISABLE_TRACING)
#define QIMAP_TRACE_SPAN(name) ((void)0)
#else
#define QIMAP_TRACE_SPAN(name) \
  ::qimap::obs::TraceSpan QIMAP_OBS_CONCAT(qimap_trace_span_, __LINE__)(name)
#endif

}  // namespace obs
}  // namespace qimap

#endif  // QIMAP_OBS_TRACE_H_
