#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "obs/run_meta.h"

namespace qimap {
namespace obs {
namespace {

// Cap the buffer so a pathological run cannot eat the heap; events past
// the cap are counted and reported in the exported JSON metadata.
constexpr size_t kMaxEvents = size_t{1} << 20;

std::atomic<bool> g_enabled{false};

struct Recorder {
  std::mutex mu;
  std::vector<TraceEvent> events;
  size_t dropped = 0;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  static Recorder& Get() {
    static Recorder* recorder = new Recorder;
    return *recorder;
  }
};

uint32_t LocalTid() {
  static std::atomic<uint32_t> next_tid{1};
  thread_local uint32_t tid = next_tid.fetch_add(1);
  return tid;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

namespace internal {

bool TracingEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void RecordCompleteEvent(const char* name,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end) {
  Recorder& rec = Recorder::Get();
  TraceEvent event;
  event.name = name;
  event.tid = LocalTid();
  std::lock_guard<std::mutex> lock(rec.mu);
  event.ts_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(start -
                                                            rec.epoch)
          .count());
  event.dur_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());
  if (rec.events.size() >= kMaxEvents) {
    ++rec.dropped;
    return;
  }
  rec.events.push_back(std::move(event));
}

}  // namespace internal

void Trace::Enable() { g_enabled.store(true, std::memory_order_relaxed); }

void Trace::Disable() {
  g_enabled.store(false, std::memory_order_relaxed);
}

bool Trace::Enabled() { return internal::TracingEnabled(); }

void Trace::Clear() {
  Recorder& rec = Recorder::Get();
  std::lock_guard<std::mutex> lock(rec.mu);
  rec.events.clear();
  rec.dropped = 0;
  rec.epoch = std::chrono::steady_clock::now();
}

size_t Trace::NumEvents() {
  Recorder& rec = Recorder::Get();
  std::lock_guard<std::mutex> lock(rec.mu);
  return rec.events.size();
}

std::vector<TraceEvent> Trace::Events() {
  Recorder& rec = Recorder::Get();
  std::lock_guard<std::mutex> lock(rec.mu);
  return rec.events;
}

std::string Trace::ToJson() {
  Recorder& rec = Recorder::Get();
  std::lock_guard<std::mutex> lock(rec.mu);
  std::string out = "{\"meta\": " + RunMetaJson() + ", \"traceEvents\": [";
  for (size_t i = 0; i < rec.events.size(); ++i) {
    const TraceEvent& e = rec.events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": \"";
    AppendEscaped(&out, e.name);
    out += "\", \"cat\": \"qimap\", \"ph\": \"X\", \"ts\": " +
           std::to_string(e.ts_us) +
           ", \"dur\": " + std::to_string(e.dur_us) +
           ", \"pid\": 1, \"tid\": " + std::to_string(e.tid) + "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped\": " +
         std::to_string(rec.dropped) + "}}\n";
  return out;
}

bool Trace::WriteJson(const std::string& path) {
  // Atomic (temp + rename): a crashed or concurrent reader never sees a
  // partially written trace.
  return WriteFileAtomic(path, ToJson());
}

}  // namespace obs
}  // namespace qimap
