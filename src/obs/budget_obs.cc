#include "obs/budget_obs.h"

#include <string>

#include "obs/metrics.h"

namespace qimap {
namespace obs {

uint64_t ReportBudgetTrip(JournalRun& journal, const RunBudget& guard,
                          const Status& status, bool partial) {
  BudgetLimit limit = guard.tripped();
  if (limit == BudgetLimit::kNone) return 0;

  static const MetricId kExhausted =
      RegisterCounter("budget.exhausted");
  static const MetricId kPartial =
      RegisterCounter("budget.partial_results");
  CounterAdd(kExhausted);
  // Per-limit counters are registered by name on demand — trips are cold
  // paths, so the registry lookup is fine without a static cache.
  CounterAdd(RegisterCounter(std::string("budget.exhausted.") +
                             BudgetLimitName(limit)));
  if (partial) CounterAdd(kPartial);

  if (!journal.active()) return 0;
  return journal.RecordBudget(status.message(), BudgetLimitName(limit),
                              guard.UsageString());
}

}  // namespace obs
}  // namespace qimap
