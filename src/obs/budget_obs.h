#ifndef QIMAP_OBS_BUDGET_OBS_H_
#define QIMAP_OBS_BUDGET_OBS_H_

#include <cstdint>

#include "base/budget.h"
#include "base/status.h"
#include "obs/journal.h"

namespace qimap {
namespace obs {

/// Reports one resource-budget trip: appends a `budget` event to the
/// run's journal (so a governed run's event stream ends with the limit
/// that stopped it) and mirrors the trip into the metrics registry:
///
///   budget.exhausted           every trip, whatever the limit
///   budget.exhausted.<limit>   per-limit: steps / deadline / memory /
///                              nulls / cancelled / fault
///   budget.partial_results     trips where the engine handed back a
///                              best-effort partial result
///
/// `status` is the structured status the engine is about to return;
/// `partial` says whether a partial result was delivered. No-op (returns
/// 0) when `guard` did not actually trip — plain errors are not budget
/// events. Returns the journal event id (0 when journaling is off).
uint64_t ReportBudgetTrip(JournalRun& journal, const RunBudget& guard,
                          const Status& status, bool partial);

}  // namespace obs
}  // namespace qimap

#endif  // QIMAP_OBS_BUDGET_OBS_H_
