#include "obs/run_meta.h"

#include <atomic>
#include <cstdio>

#include "base/version.h"

namespace qimap {
namespace obs {
namespace {

std::atomic<int> g_run_threads{0};

const char* BuildType() {
#if defined(QIMAP_BUILD_TYPE)
  return QIMAP_BUILD_TYPE;
#else
  return "unknown";
#endif
}

constexpr bool kTracingDisabled =
#if defined(QIMAP_OBS_DISABLE_TRACING)
    true;
#else
    false;
#endif

constexpr bool kProvenanceDisabled =
#if defined(QIMAP_OBS_DISABLE_PROVENANCE)
    true;
#else
    false;
#endif

constexpr bool kProfilerDisabled =
#if defined(QIMAP_OBS_DISABLE_PROFILER)
    true;
#else
    false;
#endif

constexpr bool kProgressDisabled =
#if defined(QIMAP_OBS_DISABLE_PROGRESS)
    true;
#else
    false;
#endif

constexpr bool kLedgerDisabled =
#if defined(QIMAP_OBS_DISABLE_LEDGER)
    true;
#else
    false;
#endif

}  // namespace

void SetRunThreads(int threads) {
  g_run_threads.store(threads, std::memory_order_relaxed);
}

int RunThreads() { return g_run_threads.load(std::memory_order_relaxed); }

std::string RunMetaJson() {
  std::string out = "{\"qimap_version\": \"";
  out += VersionString();
  out += "\", \"build_type\": \"";
  out += BuildType();
  out += "\", \"threads\": " + std::to_string(RunThreads());
  out += std::string(", \"tracing_disabled\": ") +
         (kTracingDisabled ? "true" : "false");
  out += std::string(", \"provenance_disabled\": ") +
         (kProvenanceDisabled ? "true" : "false");
  out += std::string(", \"profiler_disabled\": ") +
         (kProfilerDisabled ? "true" : "false");
  out += std::string(", \"progress_disabled\": ") +
         (kProgressDisabled ? "true" : "false");
  out += std::string(", \"ledger_disabled\": ") +
         (kLedgerDisabled ? "true" : "false");
  out += "}";
  return out;
}

bool WriteFileAtomic(const std::string& path, const std::string& data) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace qimap
