#ifndef QIMAP_OBS_RUN_META_H_
#define QIMAP_OBS_RUN_META_H_

#include <string>

namespace qimap {
namespace obs {

/// Run-metadata stamp shared by every telemetry JSON writer
/// (`--metrics-out`, `--journal-out`, `--trace-out`, `--profile-out`, and
/// the bench reports), so an artifact on disk is self-describing: which
/// qimap built it, under which build type, at what thread count, and with
/// which observability layers compiled out.

/// Records the resolved worker-thread count for this run (the CLI sets it
/// once flags are parsed; 0 = unspecified/default).
void SetRunThreads(int threads);
int RunThreads();

/// The stamp as a rendered JSON object, e.g.
/// {"qimap_version": "0.3.0", "build_type": "Release", "threads": 4,
///  "tracing_disabled": false, "provenance_disabled": false,
///  "profiler_disabled": false, "progress_disabled": false,
///  "ledger_disabled": false}.
/// Writers splice it under a top-level "meta" key.
std::string RunMetaJson();

/// Writes `data` to `path` atomically: the bytes land in `path.tmp` first
/// and rename(2) into place only on a fully successful write, so a crash
/// or cancellation never leaves a torn JSON artifact. False on I/O error
/// (the temp file is removed).
bool WriteFileAtomic(const std::string& path, const std::string& data);

}  // namespace obs
}  // namespace qimap

#endif  // QIMAP_OBS_RUN_META_H_
