#ifndef QIMAP_OBS_JSON_H_
#define QIMAP_OBS_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace qimap {
namespace obs {

/// A minimal JSON DOM, just rich enough to validate the telemetry files
/// the obs layer emits (trace-event JSON, metrics snapshots, bench
/// reports). Not a general-purpose parser, but strict where it counts:
/// numbers are doubles validated against the RFC 8259 grammar, strings
/// decode every escape including \uXXXX (surrogate pairs combine and
/// decode to UTF-8; malformed or unpaired escapes are parse errors).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                             // arrays
  std::vector<std::pair<std::string, JsonValue>> members;   // objects

  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsString() const { return type == Type::kString; }
  bool IsNumber() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses a complete JSON document (rejects trailing garbage).
Result<JsonValue> ParseJson(std::string_view text);

/// Reads and parses a JSON file.
Result<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace obs
}  // namespace qimap

#endif  // QIMAP_OBS_JSON_H_
