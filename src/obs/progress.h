#ifndef QIMAP_OBS_PROGRESS_H_
#define QIMAP_OBS_PROGRESS_H_

#include <cstdint>
#include <functional>
#include <string>

namespace qimap {

class Budget;

namespace obs {

/// Live progress heartbeats for the chase engines and inversion
/// pipelines. Every engine's serial firing loop already ticks a
/// RunBudget; a ProgressRun piggybacks on the same loop and emits a
/// snapshot every `interval` steps — facts written, nulls minted,
/// triggers fired/skipped, the consumed fraction of the attached budget,
/// and a CostModel-derived ETA — to any combination of a stderr status
/// line (TTY-aware), a JSONL stream, and an in-process sink (tests).
///
/// Determinism contract, same as every obs surface: snapshots are taken
/// only on the serial paths, counters come from the engines' own stats
/// structs, and the clock is injectable — so the canonical (timing-free)
/// rendering of every heartbeat is byte-identical across `--threads`.
///
/// Disabled (the default) a ProgressRun costs one branch per Step().
/// Compile out entirely with -DQIMAP_OBS_DISABLE_PROGRESS; the same name
/// as an environment variable is a runtime kill switch (`Enable()`
/// becomes a no-op), matching QIMAP_OBS_DISABLE_PROFILER.

/// The engine-side counters a heartbeat samples. Each pipeline fills
/// this from its own stats struct via the sampler callback.
struct ProgressSample {
  uint64_t facts = 0;    ///< facts written so far
  uint64_t nulls = 0;    ///< labeled nulls minted so far
  uint64_t fired = 0;    ///< triggers fired (or candidates kept)
  uint64_t skipped = 0;  ///< triggers skipped (or candidates pruned)
};

/// One heartbeat. `seq` is process-monotone across runs (strictly
/// increasing within a stream; Progress::Reset() rewinds it).
struct ProgressSnapshot {
  uint64_t seq = 0;
  std::string pipeline;  ///< e.g. "chase/standard", "mingen"
  bool is_final = false;  ///< emitted by the run's destructor
  uint64_t steps = 0;
  uint64_t facts = 0;
  uint64_t nulls = 0;
  uint64_t fired = 0;
  uint64_t skipped = 0;
  /// Upper-bound step estimate (chase: CostModel product bound refined to
  /// the exact merged-batch total once triggers are collected; inversion
  /// pipelines: their candidate counts). 0 = unknown.
  uint64_t total_estimate = 0;
  /// Largest consumed fraction across the attached budget's bounded
  /// counter limits (steps, nulls, memory) in [0, 1]; -1 when no bounded
  /// budget is attached. Deadline consumption is deliberately excluded —
  /// it is timing and would break canonical byte-identity.
  double budget_fraction = -1.0;
  uint64_t elapsed_us = 0;  ///< since run start, per the injected clock
  uint64_t eta_us = 0;      ///< elapsed * (total - steps) / steps; 0 unknown

  /// One JSON object (one JSONL line without the trailing newline).
  /// `canonical` omits the timing fields (`elapsed_us`, `eta_us`),
  /// leaving only fields byte-identical across thread counts.
  std::string ToJson(bool canonical) const;

  /// The stderr status line (no leading \r / trailing newline).
  std::string ToLine() const;
};

/// Process-wide progress configuration, set once by the CLI (or a test)
/// before the pipelines run.
struct ProgressConfig {
  /// Steps between heartbeats. The final snapshot is emitted regardless.
  uint64_t interval = 4096;
  /// Render a live status line to stderr. Self-suppresses when stderr is
  /// not a TTY (ctest / piped output stays clean) unless `force_tty` or
  /// the QIMAP_PROGRESS_FORCE_TTY environment variable overrides.
  bool stderr_line = false;
  bool force_tty = false;
  /// JSONL heartbeat stream path; opened (truncated) on the first emit
  /// with a `{"meta": ...}` header line. Empty = no stream.
  std::string jsonl_path;
  /// Monotone microsecond clock; empty = std::chrono::steady_clock.
  std::function<uint64_t()> clock;
  /// In-process test hook; receives every snapshot.
  std::function<void(const ProgressSnapshot&)> sink;
};

#if !defined(QIMAP_OBS_DISABLE_PROGRESS)

class Progress {
 public:
  /// Turns heartbeats on. No-op (stays disabled) when the
  /// QIMAP_OBS_DISABLE_PROGRESS environment variable is set.
  static void Enable();
  /// Turns heartbeats off and closes the JSONL stream.
  static void Disable();
  static bool Enabled();
  /// Replaces the process-wide configuration (closes any open stream).
  static void Configure(const ProgressConfig& config);
  /// Disables, restores the default configuration, rewinds `seq`.
  static void Reset();

  /// Flushes and closes the JSONL stream, if open (idempotent).
  static void CloseStream();
};

namespace internal {
ProgressConfig& ProgressConfigRef();
uint64_t NextProgressSeq();
uint64_t ProgressNowUs();
void EmitProgress(const ProgressSnapshot& snap);
}  // namespace internal

/// The per-run recorder an engine holds next to its RunBudget. Inert
/// when Progress is disabled at construction time. The destructor emits
/// a final heartbeat (is_final = true), so every observed run produces at
/// least one snapshot.
class ProgressRun {
 public:
  using Sampler = std::function<ProgressSample()>;

  /// `pipeline` must outlive the run (string literals at every call
  /// site). `sampler` reads the engine's stats struct; it is only
  /// invoked from Step()/the destructor on the engine's serial path.
  /// `budget` is the caller's shared budget (may be null) — the source
  /// of the consumed-fraction display.
  ProgressRun(const char* pipeline, Sampler sampler, const Budget* budget);
  ProgressRun(const ProgressRun&) = delete;
  ProgressRun& operator=(const ProgressRun&) = delete;
  ~ProgressRun();

  /// Counts one engine step; emits a heartbeat every `interval` steps.
  void Step() {
    if (!active_) return;
    if (++steps_ % interval_ == 0) Emit(false);
  }

  /// Sets (or refines) the total-steps upper bound shown as
  /// `total_estimate` and used for the ETA.
  void SetTotalEstimate(uint64_t total) { total_estimate_ = total; }

  uint64_t steps() const { return steps_; }

 private:
  void Emit(bool is_final);

  bool active_ = false;
  const char* pipeline_ = "";
  Sampler sampler_;
  const Budget* budget_ = nullptr;
  uint64_t interval_ = 1;
  uint64_t steps_ = 0;
  uint64_t total_estimate_ = 0;
  uint64_t start_us_ = 0;
};

#else  // QIMAP_OBS_DISABLE_PROGRESS

// Compiled-out heartbeats: signature-compatible inline no-ops so call
// sites need no #ifdefs (kill-switch parity with the profiler stubs).
class Progress {
 public:
  static void Enable() {}
  static void Disable() {}
  static bool Enabled() { return false; }
  static void Configure(const ProgressConfig&) {}
  static void Reset() {}
  static void CloseStream() {}
};

class ProgressRun {
 public:
  using Sampler = std::function<ProgressSample()>;
  ProgressRun(const char*, Sampler, const Budget*) {}
  ProgressRun(const ProgressRun&) = delete;
  ProgressRun& operator=(const ProgressRun&) = delete;
  void Step() {}
  void SetTotalEstimate(uint64_t) {}
  uint64_t steps() const { return 0; }
};

#endif  // QIMAP_OBS_DISABLE_PROGRESS

}  // namespace obs
}  // namespace qimap

#endif  // QIMAP_OBS_PROGRESS_H_
