#ifndef QIMAP_OBS_JOURNAL_H_
#define QIMAP_OBS_JOURNAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace qimap {
namespace obs {

/// The provenance journal: a process-wide, bounded, structured event log
/// recording *why* every fact of a chase result exists and *why* every
/// rule of an inversion output was emitted. Where the metrics registry
/// answers "how much work happened", the journal answers "where did this
/// fact come from" — the question that matters when debugging the subset
/// property (Theorem 3.5) or the MinGen/QuasiInverse pipeline
/// (Theorem 4.1).
///
/// Events are appended by `JournalRun` recorders embedded in the chase
/// engines and inversion algorithms, buffered in a bounded ring, and
/// optionally spilled to a JSONL file (`qimap_cli --journal-out`). On top
/// of the buffered events, `ExplainFact` reconstructs the derivation tree
/// of a fact — (dependency, bindings, parents) at every level down to the
/// input facts.
///
/// Journaling is off by default. A disabled `JournalRun` costs one
/// relaxed atomic load per pipeline run and nothing per fact; defining
/// `QIMAP_OBS_DISABLE_PROVENANCE` (mirroring `QIMAP_OBS_DISABLE_TRACING`)
/// compiles even that out and turns every record call into a no-op the
/// optimizer removes.

/// What one journal event describes.
enum class JournalEventKind : uint8_t {
  /// An input fact registered when a run starts (no parents).
  kBaseFact = 0,
  /// A fact added by a dependency firing (or rewritten by an egd merge).
  kDerivedFact = 1,
  /// A fresh labeled null minted for an existential variable.
  kNullMinted = 2,
  /// An egd merge: one value replaced by another across the instance.
  kEgdMerge = 3,
  /// A rule emitted by an inversion algorithm, attributed to the prime
  /// instance or generator candidates that produced it.
  kRuleEmitted = 4,
  /// A resource-budget trip ending the run early: the fact field carries
  /// the status message, the dependency field names the tripped limit
  /// ("steps", "deadline", "memory", "nulls", "cancelled", "fault"), and
  /// the bindings field carries the run's usage counters.
  kBudgetTrip = 5,
  /// A result served from a cache instead of recomputed (the solution
  /// cache): the fact field carries a short description, the dependency
  /// field the cache name, and the bindings field the fingerprint key —
  /// the audit trail for "this run never derived these facts itself".
  kCacheEvent = 6,
};

/// Short name used in the JSONL `kind` field: "base", "fact", "null",
/// "merge", "rule", "budget", "cache".
const char* JournalEventKindName(JournalEventKind kind);

/// One journal event. String fields are rendered with the repo's standard
/// `ToString` conventions so they match CLI output verbatim.
struct JournalEvent {
  /// Monotone, process-wide, 1-based.
  uint64_t id = 0;
  JournalEventKind kind = JournalEventKind::kBaseFact;
  /// Which pipeline run recorded the event (monotone per process).
  uint64_t run = 0;
  /// The recording pipeline, e.g. "chase/standard", "chase/target",
  /// "chase/disjunctive", "mingen", "quasi_inverse", "inverse".
  std::string pipeline;
  /// The fact (kBaseFact/kDerivedFact), the null label (kNullMinted), the
  /// "dropped -> kept" pair (kEgdMerge), or the rule text (kRuleEmitted).
  std::string fact;
  /// The dependency that fired / the attribution source; empty for base
  /// facts.
  std::string dependency;
  /// Index of the dependency within its run's dependency list; -1 when
  /// not applicable.
  int32_t dep_index = -1;
  /// The trigger homomorphism, rendered as "x=a, y=_N1"; for kNullMinted
  /// the existential variable the null was minted for.
  std::string bindings;
  /// Event ids of the parent facts the trigger matched (kDerivedFact), or
  /// of the attribution events (kRuleEmitted). Always smaller than `id`.
  std::vector<uint64_t> parents;
  /// Event ids of the nulls minted by the same firing.
  std::vector<uint64_t> nulls;
  /// Disjunct index for disjunctive-chase branches; -1 otherwise.
  int32_t disjunct = -1;
  /// Chase-tree node id for disjunctive-chase events; 0 otherwise.
  uint64_t node = 0;

  /// Renders the event as one JSONL line (no trailing newline). Empty and
  /// not-applicable fields are omitted.
  std::string ToJson() const;
};

/// The process-wide journal. All methods are thread-safe; appends take a
/// mutex (journal events are orders of magnitude rarer than metric
/// increments, and only happen when journaling is enabled).
class Journal {
 public:
  static void Enable();
  static void Disable();
  static bool Enabled();
  /// Drops all buffered events, closes any spill file, and resets the
  /// dropped/spilled/recorded counts (test hook).
  static void Clear();
  /// Sets the ring capacity (default 1<<16 events). When the buffer is
  /// full: with a spill path set, the whole buffer is flushed to the file;
  /// without one, the oldest event is dropped and counted.
  static void SetCapacity(size_t capacity);
  /// Opens (truncating) a JSONL spill file; "" closes it. False on I/O
  /// failure.
  static bool SetSpillPath(const std::string& path);
  /// Appends all buffered events to the spill file and empties the
  /// buffer. No-op (true) without a spill path.
  static bool Flush();
  /// Buffered (in-memory) events.
  static size_t NumEvents();
  /// Total events ever recorded / dropped by the ring / spilled to file.
  static uint64_t NumRecorded();
  static uint64_t NumDropped();
  static uint64_t NumSpilled();
  /// Copies the buffered events, oldest first.
  static std::vector<JournalEvent> Events();
  /// Renders the buffered events as JSONL (one event per line).
  static std::string ToJsonl();
  /// Writes ToJsonl() to `path`; false on I/O failure. Independent of the
  /// spill file.
  static bool WriteJsonl(const std::string& path);
};

namespace internal {
bool JournalEnabled();
uint64_t NextRunId();
uint64_t Append(JournalEvent event);
}  // namespace internal

#if defined(QIMAP_OBS_DISABLE_PROVENANCE)

/// Compiled-out recorder: every call is a constant no-op (mirrors
/// QIMAP_OBS_DISABLE_TRACING). Call sites guard string rendering with
/// `if (journal.active())`, which folds to `if (false)`.
class JournalRun {
 public:
  explicit JournalRun(const char*) {}
  static constexpr bool active() { return false; }
  uint64_t RecordBaseFact(const std::string&) { return 0; }
  uint64_t RecordDerivedFact(const std::string&, const std::string&,
                             int32_t, const std::string&,
                             std::vector<uint64_t>,
                             std::vector<uint64_t> = {}, int32_t = -1,
                             uint64_t = 0) {
    return 0;
  }
  uint64_t RecordNull(const std::string&, const std::string&,
                      const std::string&, int32_t, uint64_t = 0) {
    return 0;
  }
  uint64_t RecordMerge(const std::string&, const std::string&,
                       const std::string&, int32_t, const std::string&) {
    return 0;
  }
  uint64_t RecordRule(const std::string&, const std::string&, int32_t,
                      const std::string&, std::vector<uint64_t>) {
    return 0;
  }
  uint64_t RecordBudget(const std::string&, const std::string&,
                        const std::string&) {
    return 0;
  }
  uint64_t RecordCache(const std::string&, const std::string&,
                       const std::string&) {
    return 0;
  }
  uint64_t IdForFact(const std::string&) const { return 0; }
};

#else

/// Per-run provenance recorder. Constructed at the top of a pipeline run;
/// when the journal is disabled at runtime, `active()` is false and every
/// record call returns 0 without touching the journal. The recorder keeps
/// a fact-text -> event-id map so trigger parents resolve to the event
/// that first produced each fact.
class JournalRun {
 public:
  explicit JournalRun(const char* pipeline) : pipeline_(pipeline) {
    if (internal::JournalEnabled()) {
      active_ = true;
      run_ = internal::NextRunId();
    }
  }
  JournalRun(const JournalRun&) = delete;
  JournalRun& operator=(const JournalRun&) = delete;

  bool active() const { return active_; }

  /// Returns the event id of `fact`, registering a base-fact event if the
  /// run has not seen it yet. Used both to register input instances and
  /// to resolve trigger parents.
  uint64_t RecordBaseFact(const std::string& fact);

  /// Records one fact added by a dependency firing. First-writer wins in
  /// the fact-id map: duplicate adds append their own event but parent
  /// lookups keep resolving to the original derivation.
  uint64_t RecordDerivedFact(const std::string& fact,
                             const std::string& dependency,
                             int32_t dep_index, const std::string& bindings,
                             std::vector<uint64_t> parents,
                             std::vector<uint64_t> nulls = {},
                             int32_t disjunct = -1, uint64_t node = 0);

  /// Records a freshly minted null; `variable` is the existential
  /// variable it instantiates.
  uint64_t RecordNull(const std::string& null_text,
                      const std::string& variable,
                      const std::string& dependency, int32_t dep_index,
                      uint64_t node = 0);

  /// Records an egd merge replacing `dropped` with `kept`.
  uint64_t RecordMerge(const std::string& kept, const std::string& dropped,
                       const std::string& dependency, int32_t dep_index,
                       const std::string& bindings);

  /// Records an emitted inversion rule, attributed via `dependency` (the
  /// sigma-star member / prime instance) and `parents` (generator or
  /// prime-instance events).
  uint64_t RecordRule(const std::string& rule,
                      const std::string& dependency, int32_t dep_index,
                      const std::string& bindings,
                      std::vector<uint64_t> parents);

  /// Records a resource-budget trip ending the run: `message` is the
  /// structured status message, `limit` the tripped limit's short name
  /// (BudgetLimitName), `usage` the run's usage counters. Always the last
  /// event a governed run appends.
  uint64_t RecordBudget(const std::string& message,
                        const std::string& limit,
                        const std::string& usage);

  /// Records a cache-served result: `message` is a short description
  /// ("solution cache hit"), `cache` the cache's name ("solcache"),
  /// `key` the fingerprint key of the served entry.
  uint64_t RecordCache(const std::string& message, const std::string& cache,
                       const std::string& key);

  /// Event id previously recorded for `fact`, or 0 if unseen.
  uint64_t IdForFact(const std::string& fact) const;

 private:
  bool active_ = false;
  uint64_t run_ = 0;
  const char* pipeline_ = "";
  std::map<std::string, uint64_t> fact_ids_;
};

#endif  // QIMAP_OBS_DISABLE_PROVENANCE

/// One node of a reconstructed derivation tree: the event plus the
/// recursively explained parents.
struct DerivationNode {
  JournalEvent event;
  std::vector<DerivationNode> parents;
  /// The null events minted by the same firing (not recursed into).
  std::vector<JournalEvent> minted_nulls;
};

/// Reconstructs the derivation tree of the first base/derived event whose
/// fact text equals `fact`. `events` is a journal snapshot (Events());
/// parents always have smaller ids, so the recursion terminates. Returns
/// nullopt when no event matches.
std::optional<DerivationNode> ExplainFact(
    const std::vector<JournalEvent>& events, const std::string& fact);

/// Renders a derivation tree as a JSON object:
///   {"fact":"Q(a,b)","event":3,"kind":"fact","base":false,
///    "dependency":"...","dep_index":0,"bindings":"x=a, y=b",
///    "nulls":[{"null":"_N1","for":"z"}],"parents":[...]}
std::string DerivationToJson(const DerivationNode& node);

/// Renders a derivation tree as an indented pretty-printed tree.
std::string DerivationToText(const DerivationNode& node);

}  // namespace obs
}  // namespace qimap

#endif  // QIMAP_OBS_JOURNAL_H_
