#ifndef QIMAP_OBS_METRICS_H_
#define QIMAP_OBS_METRICS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace qimap {
namespace obs {

/// A process-wide metrics registry with named counters, gauges, and
/// log-scale latency histograms.
///
/// Design: increments go to lock-free thread-local shards (plain relaxed
/// atomic stores owned by the writing thread) and are summed across shards
/// only when a snapshot is taken, so instrumenting a hot path costs a
/// thread-local pointer fetch plus one relaxed atomic add. Registration is
/// idempotent by name and mutex-protected; hot paths cache the returned
/// id in a function-local static:
///
///   static const obs::MetricId kFired =
///       obs::RegisterCounter("chase.triggers_fired");
///   obs::CounterAdd(kFired, stats.triggers_fired);
///
/// Metric names are dotted lowercase, `<subsystem>.<what>` — see
/// docs/observability.md for the full catalog.
using MetricId = uint32_t;

/// Registers (or looks up) a monotonic counter. Idempotent by name.
MetricId RegisterCounter(const std::string& name);
/// Registers (or looks up) a last-write-wins gauge.
MetricId RegisterGauge(const std::string& name);
/// Registers (or looks up) a power-of-two-bucket histogram. Values are
/// unitless; latency recorders use microseconds by convention (and name
/// the metric `*.latency_us`).
MetricId RegisterHistogram(const std::string& name);

/// Adds `delta` to the counter on this thread's shard.
void CounterAdd(MetricId id, uint64_t delta = 1);
/// Sets the gauge (global, last write wins).
void GaugeSet(MetricId id, int64_t value);
/// Records one observation into the histogram's log-scale bucket.
void HistogramRecord(MetricId id, uint64_t value);

/// Merged view of one histogram. Bucket `i` counts values `v` with
/// `bit_width(v) == i`, i.e. `v` in `[2^(i-1), 2^i)` (bucket 0 counts
/// zeros); `buckets` lists only nonempty buckets as
/// (exclusive upper bound, count) pairs.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

/// A merged point-in-time view of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Renders the snapshot as a JSON object (the `--metrics-out` format;
  /// schema in docs/observability.md).
  std::string ToJson() const;
};

/// Merges all thread shards into a snapshot. Safe to call concurrently
/// with writers (relaxed reads; the result is a consistent-enough view
/// for reporting).
MetricsSnapshot SnapshotMetrics();

/// Zeroes every metric in every shard. Intended for tests and for bench
/// reporters isolating a measurement window; callers must quiesce writer
/// threads first.
void ResetMetrics();

/// Monotonically increasing count of ResetMetrics() calls (starts at 1).
/// Caches whose hit/miss counters feed this registry key their validity
/// on it so that counter values are a pure function of the work performed
/// since the last reset — the determinism contract the canonical ledger
/// records rely on — rather than of prior windows' cache warm-up.
uint64_t MetricsResetGeneration();

/// RAII helper recording the enclosed scope's wall time, in microseconds,
/// into a histogram.
class ScopedLatency {
 public:
  explicit ScopedLatency(MetricId histogram)
      : id_(histogram), start_(std::chrono::steady_clock::now()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    HistogramRecord(
        id_, static_cast<uint64_t>(
                 std::chrono::duration_cast<std::chrono::microseconds>(
                     elapsed)
                     .count()));
  }

 private:
  MetricId id_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace qimap

#endif  // QIMAP_OBS_METRICS_H_
