#ifndef QIMAP_OBS_LEDGER_H_
#define QIMAP_OBS_LEDGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qimap {

class Budget;

namespace obs {

struct JsonValue;

/// The append-only run ledger: one JSONL file accumulating a record per
/// CLI or bench run — run meta, the final metrics snapshot, a profile
/// digest, the budget outcome, and the mapping/source fingerprints — so
/// telemetry becomes longitudinal: `qimap_cli report` lists and diffs
/// runs, and `bench_report --history` gates against the recent median
/// instead of one hand-committed baseline.
///
/// Appends are atomic at the record level: the new content is staged in
/// `<path>.tmp` and rename(2)d into place, so a crash mid-write leaves
/// the previous ledger intact and never a torn record (the fault test
/// hook below proves it).
///
/// Kill-switch parity with the other obs surfaces: compile out with
/// -DQIMAP_OBS_DISABLE_LEDGER; the same name as an environment variable
/// makes `Enable()` a no-op.

/// One dependency's non-timing hot-spot digest (a projection of
/// ProfileDepSnapshot small enough to keep per run forever).
struct LedgerProfileEntry {
  std::string pipeline;
  std::string dependency;  ///< the dependency rendered as written
  uint64_t searches = 0;
  uint64_t matches = 0;
  uint64_t backtracks = 0;
  uint64_t fired = 0;
  uint64_t skipped = 0;
  uint64_t time_us = 0;  ///< timing; excluded from canonical renderings
};

/// One ledger record (one JSONL line).
struct LedgerEntry {
  uint64_t seq = 0;     ///< 1-based position in the ledger; set on append
  std::string command;  ///< e.g. "chase", "invert", "bench/chase_scale"
  uint64_t mapping_fingerprint = 0;  ///< DependencyFingerprint; 0 = none
  uint64_t source_fingerprint = 0;   ///< Instance::Fingerprint; 0 = none
  /// "ok", or the tripped limit's BudgetLimitName ("steps", "deadline",
  /// "memory", "nulls", "cancelled", "fault").
  std::string budget_outcome = "ok";
  uint64_t budget_steps = 0;
  uint64_t budget_nulls = 0;
  uint64_t budget_bytes = 0;
  int exit_code = 0;
  uint64_t ts_us = 0;            ///< wall-clock append time (timing)
  double elapsed_seconds = 0.0;  ///< run wall time (timing)
  std::map<std::string, uint64_t> counters;  ///< final metrics counters
  std::vector<LedgerProfileEntry> profile;   ///< per-dependency digest
  std::string cost_model_json;  ///< pre-rendered CostModel JSON; may be ""
  std::string meta_json;        ///< RunMetaJson() at collect time

  /// One JSON object (one JSONL line without the trailing newline).
  /// `canonical` keeps only fields byte-identical across thread counts:
  /// it omits `ts_us`, `elapsed_seconds`, per-dependency `time_us`, the
  /// `meta` object (its `threads` field varies), and every
  /// `chase.parallel.*` counter.
  std::string ToJson(bool canonical) const;
};

#if !defined(QIMAP_OBS_DISABLE_LEDGER)

class Ledger {
 public:
  /// Arms ledger appends. No-op (stays disabled) when the
  /// QIMAP_OBS_DISABLE_LEDGER environment variable is set.
  static void Enable();
  static void Disable();
  static bool Enabled();
  /// Disables and clears the fault hook.
  static void Reset();

  /// Fault hook for the crash test: the next Append writes only `bytes`
  /// bytes of the staged temp file and returns false WITHOUT renaming —
  /// exactly what a crash mid-write leaves behind.
  static void FailNextAppendForTest(size_t bytes);
};

/// Snapshots the current process telemetry into a ledger entry: merged
/// metrics counters, the profiler digest, the budget outcome read from
/// `budget` (may be null), and the run-meta stamp. Fingerprints and
/// cost-model JSON are the caller's to fill in.
LedgerEntry CollectLedgerEntry(const std::string& command,
                               const Budget* budget, int exit_code,
                               double elapsed_seconds);

/// Appends `entry` to the JSONL ledger at `path` (created if absent),
/// assigning `entry->seq = <existing records> + 1`. Atomic at the record
/// level (read + concatenate + tmp/rename). False on I/O error or when
/// the ledger is not Enabled(); the existing ledger is never damaged.
bool AppendToLedger(const std::string& path, LedgerEntry* entry);

/// Diffs two parsed ledger records (JSONL lines from ParseJson). Returns
/// one human-readable line per regression-relevant difference: counter
/// deltas (`chase.parallel.*` exempt), per-dependency profile hot-spot
/// deltas (non-timing fields), cost-model deltas, budget-outcome and
/// fingerprint changes. Empty means the runs are telemetry-identical —
/// `qimap_cli report diff` exits 0 exactly then.
std::vector<std::string> DiffLedgerEntries(const JsonValue& a,
                                           const JsonValue& b);

#else  // QIMAP_OBS_DISABLE_LEDGER

// Compiled-out ledger: signature-compatible inline no-ops.
class Ledger {
 public:
  static void Enable() {}
  static void Disable() {}
  static bool Enabled() { return false; }
  static void Reset() {}
  static void FailNextAppendForTest(size_t) {}
};

inline LedgerEntry CollectLedgerEntry(const std::string& command,
                                      const Budget*, int exit_code,
                                      double elapsed_seconds) {
  LedgerEntry entry;
  entry.command = command;
  entry.exit_code = exit_code;
  entry.elapsed_seconds = elapsed_seconds;
  return entry;
}

inline bool AppendToLedger(const std::string&, LedgerEntry*) {
  return false;
}

inline std::vector<std::string> DiffLedgerEntries(const JsonValue&,
                                                  const JsonValue&) {
  return {};
}

#endif  // QIMAP_OBS_DISABLE_LEDGER

}  // namespace obs
}  // namespace qimap

#endif  // QIMAP_OBS_LEDGER_H_
