#ifndef QIMAP_OBS_STEP_LIMIT_H_
#define QIMAP_OBS_STEP_LIMIT_H_

#include <cstddef>
#include <string>

#include "base/status.h"

namespace qimap {
namespace obs {

/// Shared step-budget guard for the chase engines. Every variant used to
/// hand-roll `++steps > max_steps` with its own error text; this gives
/// them one counter and one ResourceExhausted message shape that always
/// names the variant and the limit that was hit:
///
///   "standard chase exceeded its step limit (1048576 steps)"
///
/// The OK-path Tick() is an increment, a compare, and an empty Status.
class StepLimiter {
 public:
  /// `what` names the guarded loop (e.g. "disjunctive chase"); `hint` is
  /// appended verbatim to the error message when the limit trips.
  StepLimiter(const char* what, size_t max_steps, const char* hint = "")
      : what_(what), hint_(hint), max_steps_(max_steps) {}

  /// Counts one step; ResourceExhausted once the budget is exceeded.
  Status Tick() {
    if (++steps_ > max_steps_) return Exhausted();
    return Status::OK();
  }

  size_t steps() const { return steps_; }
  size_t max_steps() const { return max_steps_; }

 private:
  Status Exhausted() const {
    return Status::ResourceExhausted(
        std::string(what_) + " exceeded its step limit (" +
        std::to_string(max_steps_) + " steps)" + hint_);
  }

  const char* what_;
  const char* hint_;
  size_t max_steps_;
  size_t steps_ = 0;
};

}  // namespace obs
}  // namespace qimap

#endif  // QIMAP_OBS_STEP_LIMIT_H_
