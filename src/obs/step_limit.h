#ifndef QIMAP_OBS_STEP_LIMIT_H_
#define QIMAP_OBS_STEP_LIMIT_H_

#include <cstddef>

#include "base/budget.h"
#include "base/status.h"

namespace qimap {
namespace obs {

/// Backward-compatibility shim over base/budget.h: a step-only guard with
/// the original StepLimiter surface. The engines themselves now hold a
/// `RunBudget` (their option `max_steps` paired with the optional shared
/// `Budget`); this class remains for callers that only ever wanted a
/// step counter, and keeps the historical message shape:
///
///   "standard chase exceeded its step limit (1048576 steps)"
///
/// Two historical bugs are fixed by the Budget underneath: the tick that
/// trips the limit is refused and NOT counted (steps() used to overreport
/// by 1 after tripping), and a non-empty `hint` is separated from the
/// message by exactly one space regardless of how the caller spelled it.
class StepLimiter {
 public:
  /// `what` names the guarded loop (e.g. "disjunctive chase"); `hint` is
  /// appended to the error message when the limit trips.
  StepLimiter(const char* what, size_t max_steps, const char* hint = "")
      : budget_(BudgetSpec::StepsOnly(max_steps)),
        what_(what),
        hint_(hint) {}

  /// Counts one step; ResourceExhausted once the budget is exceeded.
  Status Tick() { return budget_.Tick(what_, hint_); }

  /// Steps actually performed; a tripped limiter reports max_steps().
  size_t steps() const { return budget_.steps(); }
  size_t max_steps() const { return budget_.max_steps(); }

 private:
  Budget budget_;
  const char* what_;
  const char* hint_;
};

}  // namespace obs
}  // namespace qimap

#endif  // QIMAP_OBS_STEP_LIMIT_H_
