#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace qimap {
namespace obs {
namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

#if !defined(QIMAP_OBS_DISABLE_PROFILER)

namespace {

// Fixed per-shard capacity, like the metrics shards: no reallocation, so
// snapshot readers can walk a shard without synchronizing with its
// writer. Registrations past the cap are accepted but their updates are
// dropped (and the snapshot flags the truncation).
constexpr size_t kMaxProfileDeps = 512;

struct AtomCells {
  std::atomic<uint64_t> probes{0};
  std::atomic<uint64_t> probe_rows{0};
  std::atomic<uint64_t> scan_rows{0};
  std::atomic<uint64_t> unify_fails{0};
};

struct DepCells {
  std::atomic<uint64_t> searches{0};
  std::atomic<uint64_t> matches{0};
  std::atomic<uint64_t> backtracks{0};
  std::atomic<uint64_t> probe_rows{0};
  std::atomic<uint64_t> scan_rows{0};
  std::atomic<uint64_t> triggers_found{0};
  std::atomic<uint64_t> fired{0};
  std::atomic<uint64_t> skipped{0};
  std::atomic<uint64_t> nulls_minted{0};
  std::atomic<uint64_t> facts_added{0};
  std::atomic<uint64_t> rhs_searches{0};
  std::atomic<uint64_t> rhs_backtracks{0};
  std::atomic<uint64_t> time_us{0};
  AtomCells atoms[kMaxProfileAtoms];
};

// One thread's slice of every dependency. Single writer, many readers,
// relaxed atomics throughout. ~240KB, so unlike the metrics shards these
// are pooled: a thread returns its shard on exit and the next thread
// reuses it (counts are cumulative; Reset zeroes the pool).
struct Shard {
  DepCells deps[kMaxProfileDeps];
};

struct Registry {
  std::mutex mu;  // guards dep metadata and the shard lists
  std::vector<std::string> pipelines;
  std::vector<std::string> texts;
  std::map<std::pair<std::string, std::string>, uint32_t> by_key;
  std::vector<Shard*> shards;       // every shard ever created
  std::vector<Shard*> free_shards;  // returned by exited threads
  std::atomic<uint32_t> num_deps{0};
  std::atomic<bool> enabled{false};
  std::atomic<bool> truncated{false};
  // Readable without the mutex on the hot path (store-release on
  // registration, load-acquire via num_deps ordering).
  std::atomic<uint32_t> body_atoms[kMaxProfileDeps] = {};

  static Registry& Get() {
    // Leaked on purpose: outlives every static destructor.
    static Registry* registry = new Registry;
    return *registry;
  }
};

// Returns this thread's shard to the pool when the thread exits; the
// shard itself stays registered so its counts survive into snapshots.
struct ShardHandle {
  Shard* shard = nullptr;
  ~ShardHandle() {
    if (shard != nullptr) {
      Registry& reg = Registry::Get();
      std::lock_guard<std::mutex> lock(reg.mu);
      reg.free_shards.push_back(shard);
    }
  }
};

Shard& LocalShard() {
  thread_local ShardHandle handle;
  if (handle.shard == nullptr) {
    Registry& reg = Registry::Get();
    std::lock_guard<std::mutex> lock(reg.mu);
    if (!reg.free_shards.empty()) {
      handle.shard = reg.free_shards.back();
      reg.free_shards.pop_back();
    } else {
      handle.shard = new Shard;
      reg.shards.push_back(handle.shard);
    }
  }
  return *handle.shard;
}

void ZeroShard(Shard* shard) {
  for (size_t d = 0; d < kMaxProfileDeps; ++d) {
    DepCells& cells = shard->deps[d];
    cells.searches.store(0, std::memory_order_relaxed);
    cells.matches.store(0, std::memory_order_relaxed);
    cells.backtracks.store(0, std::memory_order_relaxed);
    cells.probe_rows.store(0, std::memory_order_relaxed);
    cells.scan_rows.store(0, std::memory_order_relaxed);
    cells.triggers_found.store(0, std::memory_order_relaxed);
    cells.fired.store(0, std::memory_order_relaxed);
    cells.skipped.store(0, std::memory_order_relaxed);
    cells.nulls_minted.store(0, std::memory_order_relaxed);
    cells.facts_added.store(0, std::memory_order_relaxed);
    cells.rhs_searches.store(0, std::memory_order_relaxed);
    cells.rhs_backtracks.store(0, std::memory_order_relaxed);
    cells.time_us.store(0, std::memory_order_relaxed);
    for (size_t a = 0; a < kMaxProfileAtoms; ++a) {
      cells.atoms[a].probes.store(0, std::memory_order_relaxed);
      cells.atoms[a].probe_rows.store(0, std::memory_order_relaxed);
      cells.atoms[a].scan_rows.store(0, std::memory_order_relaxed);
      cells.atoms[a].unify_fails.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace

namespace internal {

thread_local ProfileTls profile_tls;

bool ProfilerEnabled() {
  return Registry::Get().enabled.load(std::memory_order_relaxed);
}

void ProfileAddTime(uint32_t dep, uint64_t us) {
  if (dep >= kMaxProfileDeps) return;
  LocalShard().deps[dep].time_us.fetch_add(us, std::memory_order_relaxed);
}

}  // namespace internal

void Profiler::Enable() {
  if (std::getenv("QIMAP_OBS_DISABLE_PROFILER") != nullptr) return;
  Registry::Get().enabled.store(true, std::memory_order_relaxed);
}

void Profiler::Disable() {
  Registry::Get().enabled.store(false, std::memory_order_relaxed);
}

bool Profiler::Enabled() { return internal::ProfilerEnabled(); }

void Profiler::Reset() {
  Registry& reg = Registry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.pipelines.clear();
  reg.texts.clear();
  reg.by_key.clear();
  reg.num_deps.store(0, std::memory_order_release);
  reg.truncated.store(false, std::memory_order_relaxed);
  for (Shard* shard : reg.shards) ZeroShard(shard);
}

uint32_t Profiler::RegisterDep(const std::string& pipeline,
                               const std::string& text,
                               uint32_t body_atoms) {
  Registry& reg = Registry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto key = std::make_pair(pipeline, text);
  auto it = reg.by_key.find(key);
  if (it != reg.by_key.end()) return it->second;
  uint32_t id = reg.num_deps.load(std::memory_order_relaxed);
  if (id >= kMaxProfileDeps) {
    reg.truncated.store(true, std::memory_order_relaxed);
    return kProfileNoDep;
  }
  reg.pipelines.push_back(pipeline);
  reg.texts.push_back(text);
  reg.by_key.emplace(std::move(key), id);
  reg.body_atoms[id].store(body_atoms, std::memory_order_relaxed);
  reg.num_deps.store(id + 1, std::memory_order_release);
  return id;
}

ProfileSnapshot Profiler::Snapshot() {
  Registry& reg = Registry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  ProfileSnapshot snapshot;
  snapshot.truncated = reg.truncated.load(std::memory_order_relaxed);
  uint32_t n = reg.num_deps.load(std::memory_order_relaxed);
  snapshot.deps.reserve(n);
  for (uint32_t d = 0; d < n; ++d) {
    ProfileDepSnapshot dep;
    dep.id = d;
    dep.pipeline = reg.pipelines[d];
    dep.text = reg.texts[d];
    dep.body_atoms = reg.body_atoms[d].load(std::memory_order_relaxed);
    size_t atoms =
        std::min<size_t>(dep.body_atoms, kMaxProfileAtoms);
    dep.totals.atoms.resize(atoms);
    for (Shard* shard : reg.shards) {
      const DepCells& cells = shard->deps[d];
      ProfileDepCounters& t = dep.totals;
      t.searches += cells.searches.load(std::memory_order_relaxed);
      t.matches += cells.matches.load(std::memory_order_relaxed);
      t.backtracks += cells.backtracks.load(std::memory_order_relaxed);
      t.probe_rows += cells.probe_rows.load(std::memory_order_relaxed);
      t.scan_rows += cells.scan_rows.load(std::memory_order_relaxed);
      t.triggers_found +=
          cells.triggers_found.load(std::memory_order_relaxed);
      t.fired += cells.fired.load(std::memory_order_relaxed);
      t.skipped += cells.skipped.load(std::memory_order_relaxed);
      t.nulls_minted += cells.nulls_minted.load(std::memory_order_relaxed);
      t.facts_added += cells.facts_added.load(std::memory_order_relaxed);
      t.rhs_searches += cells.rhs_searches.load(std::memory_order_relaxed);
      t.rhs_backtracks +=
          cells.rhs_backtracks.load(std::memory_order_relaxed);
      t.time_us += cells.time_us.load(std::memory_order_relaxed);
      for (size_t a = 0; a < atoms; ++a) {
        t.atoms[a].probes +=
            cells.atoms[a].probes.load(std::memory_order_relaxed);
        t.atoms[a].probe_rows +=
            cells.atoms[a].probe_rows.load(std::memory_order_relaxed);
        t.atoms[a].scan_rows +=
            cells.atoms[a].scan_rows.load(std::memory_order_relaxed);
        t.atoms[a].unify_fails +=
            cells.atoms[a].unify_fails.load(std::memory_order_relaxed);
      }
    }
    snapshot.deps.push_back(std::move(dep));
  }
  return snapshot;
}

void ProfileRecordSearch(uint64_t matches, uint64_t backtracks,
                         const std::vector<ProfileAtomCounters>& atoms) {
  if (!ProfileSearchActive()) return;
  uint32_t dep = internal::profile_tls.dep;
  if (dep >= kMaxProfileDeps) return;
  Registry& reg = Registry::Get();
  if (dep >= reg.num_deps.load(std::memory_order_acquire)) return;
  DepCells& cells = LocalShard().deps[dep];
  uint32_t body =
      reg.body_atoms[dep].load(std::memory_order_relaxed);
  bool is_body = internal::profile_tls.phase == ProfilePhase::kCollect &&
                 atoms.size() == body;
  if (!is_body) {
    // Satisfaction searches (and any nested search over a different
    // conjunction) pool into the rhs totals so the per-atom sums stay an
    // exact decomposition of the body-search totals.
    cells.rhs_searches.fetch_add(1, std::memory_order_relaxed);
    cells.rhs_backtracks.fetch_add(backtracks, std::memory_order_relaxed);
    return;
  }
  cells.searches.fetch_add(1, std::memory_order_relaxed);
  cells.matches.fetch_add(matches, std::memory_order_relaxed);
  size_t limit = std::min(atoms.size(), kMaxProfileAtoms);
  uint64_t sum_fails = 0;
  uint64_t sum_probe_rows = 0;
  uint64_t sum_scan_rows = 0;
  for (size_t a = 0; a < limit; ++a) {
    cells.atoms[a].probes.fetch_add(atoms[a].probes,
                                    std::memory_order_relaxed);
    cells.atoms[a].probe_rows.fetch_add(atoms[a].probe_rows,
                                        std::memory_order_relaxed);
    cells.atoms[a].scan_rows.fetch_add(atoms[a].scan_rows,
                                       std::memory_order_relaxed);
    cells.atoms[a].unify_fails.fetch_add(atoms[a].unify_fails,
                                         std::memory_order_relaxed);
    sum_fails += atoms[a].unify_fails;
    sum_probe_rows += atoms[a].probe_rows;
    sum_scan_rows += atoms[a].scan_rows;
  }
  // Totals are the sums over the recorded atom range (== the true totals
  // whenever the body fits kMaxProfileAtoms), so the snapshot invariant
  // sum(atoms.*) == totals.* holds by construction.
  (void)backtracks;
  cells.backtracks.fetch_add(sum_fails, std::memory_order_relaxed);
  cells.probe_rows.fetch_add(sum_probe_rows, std::memory_order_relaxed);
  cells.scan_rows.fetch_add(sum_scan_rows, std::memory_order_relaxed);
}

void ProfileRecordTriggers(uint32_t dep, uint64_t count) {
  if (!internal::ProfilerEnabled() || dep >= kMaxProfileDeps) return;
  LocalShard().deps[dep].triggers_found.fetch_add(
      count, std::memory_order_relaxed);
}

void ProfileRecordFire(uint32_t dep, uint64_t nulls, uint64_t facts) {
  if (!internal::ProfilerEnabled() || dep >= kMaxProfileDeps) return;
  DepCells& cells = LocalShard().deps[dep];
  cells.fired.fetch_add(1, std::memory_order_relaxed);
  cells.nulls_minted.fetch_add(nulls, std::memory_order_relaxed);
  cells.facts_added.fetch_add(facts, std::memory_order_relaxed);
}

void ProfileRecordSkip(uint32_t dep) {
  if (!internal::ProfilerEnabled() || dep >= kMaxProfileDeps) return;
  LocalShard().deps[dep].skipped.fetch_add(1, std::memory_order_relaxed);
}

void ProfileRecordOutcomes(uint32_t dep, uint64_t triggers, uint64_t fired,
                           uint64_t skipped) {
  if (!internal::ProfilerEnabled() || dep >= kMaxProfileDeps) return;
  DepCells& cells = LocalShard().deps[dep];
  cells.triggers_found.fetch_add(triggers, std::memory_order_relaxed);
  cells.fired.fetch_add(fired, std::memory_order_relaxed);
  cells.skipped.fetch_add(skipped, std::memory_order_relaxed);
}

#endif  // !QIMAP_OBS_DISABLE_PROFILER

namespace {

void AppendDepJson(std::string* out, const ProfileDepSnapshot& dep,
                   bool canonical) {
  const ProfileDepCounters& t = dep.totals;
  *out += "    {\"id\": " + std::to_string(dep.id) + ", \"pipeline\": ";
  AppendJsonString(out, dep.pipeline);
  *out += ", \"dependency\": ";
  AppendJsonString(out, dep.text);
  *out += ", \"body_atoms\": " + std::to_string(dep.body_atoms);
  *out += ",\n     \"totals\": {\"searches\": " +
          std::to_string(t.searches) +
          ", \"matches\": " + std::to_string(t.matches) +
          ", \"backtracks\": " + std::to_string(t.backtracks) +
          ", \"probe_rows\": " + std::to_string(t.probe_rows) +
          ", \"scan_rows\": " + std::to_string(t.scan_rows) +
          ",\n       \"triggers_found\": " +
          std::to_string(t.triggers_found) +
          ", \"fired\": " + std::to_string(t.fired) +
          ", \"skipped\": " + std::to_string(t.skipped) +
          ", \"nulls_minted\": " + std::to_string(t.nulls_minted) +
          ", \"facts_added\": " + std::to_string(t.facts_added) +
          ",\n       \"rhs_searches\": " + std::to_string(t.rhs_searches) +
          ", \"rhs_backtracks\": " + std::to_string(t.rhs_backtracks);
  if (!canonical) {
    *out += ", \"time_us\": " + std::to_string(t.time_us);
  }
  *out += "},\n     \"atoms\": [";
  for (size_t a = 0; a < t.atoms.size(); ++a) {
    if (a > 0) *out += ", ";
    *out += "{\"pos\": " + std::to_string(a) +
            ", \"probes\": " + std::to_string(t.atoms[a].probes) +
            ", \"probe_rows\": " + std::to_string(t.atoms[a].probe_rows) +
            ", \"scan_rows\": " + std::to_string(t.atoms[a].scan_rows) +
            ", \"unify_fails\": " + std::to_string(t.atoms[a].unify_fails) +
            "}";
  }
  *out += "]}";
}

}  // namespace

std::string ProfileSnapshot::ToJson(
    bool canonical,
    const std::vector<std::pair<std::string, std::string>>& extra) const {
  std::string out = "{\n";
  for (const auto& [key, value] : extra) {
    out += "  ";
    AppendJsonString(&out, key);
    out += ": " + value + ",\n";
  }
  out += "  \"truncated\": ";
  out += truncated ? "true" : "false";
  out += ",\n  \"deps\": [";
  for (size_t i = 0; i < deps.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    AppendDepJson(&out, deps[i], canonical);
  }
  out += "\n  ]";
  if (!canonical) {
    // Chrome-trace-compatible aggregate spans: one complete event per
    // dependency, laid end to end on a per-pipeline track — a load-order
    // picture of where chase time went, not a real timeline.
    out += ",\n  \"traceEvents\": [";
    std::map<std::string, uint64_t> track_ts;
    std::map<std::string, uint32_t> track_tid;
    bool first = true;
    for (const ProfileDepSnapshot& dep : deps) {
      if (dep.totals.time_us == 0) continue;
      if (track_tid.find(dep.pipeline) == track_tid.end()) {
        uint32_t tid = static_cast<uint32_t>(track_tid.size());
        track_tid[dep.pipeline] = tid;
      }
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"name\": ";
      AppendJsonString(&out, dep.text);
      out += ", \"cat\": ";
      AppendJsonString(&out, dep.pipeline);
      out += ", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
             std::to_string(track_tid[dep.pipeline]) +
             ", \"ts\": " + std::to_string(track_ts[dep.pipeline]) +
             ", \"dur\": " + std::to_string(dep.totals.time_us) +
             ", \"args\": {\"dep\": " + std::to_string(dep.id) +
             ", \"backtracks\": " + std::to_string(dep.totals.backtracks) +
             "}}";
      track_ts[dep.pipeline] += dep.totals.time_us;
    }
    out += "\n  ]";
  }
  out += "\n}\n";
  return out;
}

std::string ProfileSnapshot::ToText(size_t top) const {
  std::vector<const ProfileDepSnapshot*> ranked;
  ranked.reserve(deps.size());
  for (const ProfileDepSnapshot& dep : deps) ranked.push_back(&dep);
  std::sort(ranked.begin(), ranked.end(),
            [](const ProfileDepSnapshot* a, const ProfileDepSnapshot* b) {
              if (a->totals.backtracks != b->totals.backtracks) {
                return a->totals.backtracks > b->totals.backtracks;
              }
              if (a->totals.time_us != b->totals.time_us) {
                return a->totals.time_us > b->totals.time_us;
              }
              return a->id < b->id;
            });
  if (top != 0 && ranked.size() > top) ranked.resize(top);
  std::string out =
      "profile: dependencies ranked by backtracks, then time\n";
  char line[256];
  for (const ProfileDepSnapshot* dep : ranked) {
    const ProfileDepCounters& t = dep->totals;
    std::snprintf(line, sizeof(line),
                  "#%u [%s] backtracks=%" PRIu64 " time=%.3fms"
                  " searches=%" PRIu64 " matches=%" PRIu64
                  " triggers=%" PRIu64 " fired=%" PRIu64
                  " skipped=%" PRIu64 " nulls=%" PRIu64 "\n",
                  dep->id, dep->pipeline.c_str(), t.backtracks,
                  static_cast<double>(t.time_us) / 1000.0, t.searches,
                  t.matches, t.triggers_found, t.fired, t.skipped,
                  t.nulls_minted);
    out += line;
    out += "  " + dep->text + "\n";
    for (size_t a = 0; a < t.atoms.size(); ++a) {
      std::snprintf(line, sizeof(line),
                    "  atom[%zu]: probes=%" PRIu64 " probe_rows=%" PRIu64
                    " scan_rows=%" PRIu64 " unify_fails=%" PRIu64 "\n",
                    a, t.atoms[a].probes, t.atoms[a].probe_rows,
                    t.atoms[a].scan_rows, t.atoms[a].unify_fails);
      out += line;
    }
  }
  if (ranked.empty()) out += "(no dependencies profiled)\n";
  return out;
}

}  // namespace obs
}  // namespace qimap
