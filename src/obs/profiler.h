#ifndef QIMAP_OBS_PROFILER_H_
#define QIMAP_OBS_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace qimap {
namespace obs {

/// Per-dependency chase profiler: attributes homomorphism-search work —
/// wall time, backtracks, index-probe vs full-scan rows, trigger counts,
/// fire/skip outcomes, null mints — to (dependency id, body-atom
/// position). The per-tgd cost statistics are the machine-readable input
/// the compiled match plans of ROADMAP #3 need.
///
/// Design mirrors the metrics registry (metrics.h): dependencies register
/// once on a serial setup path (so ids are deterministic), increments go
/// to lock-free thread-local shards, and a snapshot merges shards by
/// order-independent summation — so every non-timing field of a profile
/// is a pure function of the input, byte-identical across `--threads`.
/// Snapshots taken while writer threads are live see a consistent-enough
/// view; the engines join their pools before returning, so CLI and test
/// snapshots are exact.
///
/// Disabled (the default) the layer costs one relaxed atomic load per
/// probe site. Compile out entirely with -DQIMAP_OBS_DISABLE_PROFILER;
/// the same name as an environment variable is a runtime kill switch
/// (`Enable()` becomes a no-op), giving parity with
/// QIMAP_OBS_DISABLE_PROVENANCE.

/// Sentinel for "no dependency attributed" (scope inactive).
inline constexpr uint32_t kProfileNoDep = 0xffffffffu;

/// Per-atom attribution is tracked up to this many body atoms; the
/// trailing positions of longer bodies are dropped from both the per-atom
/// rows and the per-dependency sums, keeping the "atoms sum to totals"
/// invariant exact.
inline constexpr size_t kMaxProfileAtoms = 12;

/// Which side of a dependency the enclosed searches serve: kCollect
/// attributes per-atom body-match work; kFire pools satisfaction/rhs
/// searches into the dependency's rhs_* totals.
enum class ProfilePhase : uint8_t { kCollect, kFire };

/// One body-atom position's share of the search, indexed by the atom's
/// position in the dependency as written (the matcher's join reorder is
/// mapped back before recording).
struct ProfileAtomCounters {
  uint64_t probes = 0;       ///< posting-list / point-lookup probes here
  uint64_t probe_rows = 0;   ///< candidate rows visited via posting list
  uint64_t scan_rows = 0;    ///< candidate rows visited via full scan
  uint64_t unify_fails = 0;  ///< candidate tuples rejected (backtracks)
};

/// One dependency's merged totals. Body-search rows/backtracks equal the
/// sums over `atoms`; satisfaction (rhs) searches are kept apart so the
/// invariant stays exact.
struct ProfileDepCounters {
  uint64_t searches = 0;        ///< body (lhs) searches run
  uint64_t matches = 0;         ///< homomorphisms enumerated
  uint64_t backtracks = 0;      ///< sum of atoms[i].unify_fails
  uint64_t probe_rows = 0;      ///< sum of atoms[i].probe_rows
  uint64_t scan_rows = 0;       ///< sum of atoms[i].scan_rows
  uint64_t triggers_found = 0;  ///< sorted batch sizes handed to firing
  uint64_t fired = 0;           ///< triggers fired
  uint64_t skipped = 0;         ///< triggers skipped (already satisfied)
  uint64_t nulls_minted = 0;    ///< fresh labeled nulls introduced
  uint64_t facts_added = 0;     ///< facts written by this dependency
  uint64_t rhs_searches = 0;    ///< satisfaction / rhs-side searches
  uint64_t rhs_backtracks = 0;  ///< their rejected candidates
  uint64_t time_us = 0;         ///< wall time inside this dep's scopes
  std::vector<ProfileAtomCounters> atoms;
};

struct ProfileDepSnapshot {
  uint32_t id = 0;
  std::string pipeline;  ///< e.g. "chase/standard", "mingen"
  std::string text;      ///< the dependency (or unit) rendered as written
  uint32_t body_atoms = 0;
  ProfileDepCounters totals;
};

/// Point-in-time merged view of every registered dependency, in id order.
struct ProfileSnapshot {
  std::vector<ProfileDepSnapshot> deps;
  bool truncated = false;  ///< registrations past capacity were dropped

  /// Renders the profile JSON document (`--profile-out` format; schema in
  /// docs/observability.md). `canonical` omits timings (`time_us`) and the
  /// Chrome-trace `traceEvents` block, leaving only fields that are
  /// byte-identical across thread counts. `extra` entries are
  /// (key, pre-rendered JSON value) pairs spliced in ahead of "deps" —
  /// the CLI passes "meta" and "cost_model".
  std::string ToJson(
      bool canonical,
      const std::vector<std::pair<std::string, std::string>>& extra = {})
      const;

  /// Renders the ranked hot-spot report (descending backtracks, then
  /// time) with a per-atom probe-vs-scan breakdown. `top` == 0 lists all.
  std::string ToText(size_t top = 0) const;
};

#if !defined(QIMAP_OBS_DISABLE_PROFILER)

class Profiler {
 public:
  /// Turns profiling on. No-op (stays disabled) when the
  /// QIMAP_OBS_DISABLE_PROFILER environment variable is set.
  static void Enable();
  static void Disable();
  static bool Enabled();
  /// Drops every registered dependency and zeroes all shards. Callers
  /// must quiesce writer threads first (tests and bench windows).
  static void Reset();
  /// Registers (or looks up) a dependency under `pipeline`, keyed by
  /// (pipeline, text). Idempotent; call on serial setup paths so ids are
  /// deterministic. Returns kProfileNoDep past capacity.
  static uint32_t RegisterDep(const std::string& pipeline,
                              const std::string& text, uint32_t body_atoms);
  /// Merges all shards. Non-timing fields are exact once writers have
  /// quiesced (pools joined).
  static ProfileSnapshot Snapshot();
};

namespace internal {
struct ProfileTls {
  uint32_t dep = kProfileNoDep;
  ProfilePhase phase = ProfilePhase::kCollect;
};
extern thread_local ProfileTls profile_tls;
bool ProfilerEnabled();
void ProfileAddTime(uint32_t dep, uint64_t us);
}  // namespace internal

/// RAII scope attributing the enclosed searches (and wall time) to `dep`.
/// Nests: the previous attribution is restored on exit, and each scope's
/// time is inclusive of its children. Inert when profiling is off or
/// `dep` is kProfileNoDep.
class ProfiledDepScope {
 public:
  ProfiledDepScope(uint32_t dep, ProfilePhase phase) {
    if (internal::ProfilerEnabled() && dep != kProfileNoDep) {
      active_ = true;
      saved_ = internal::profile_tls;
      internal::profile_tls.dep = dep;
      internal::profile_tls.phase = phase;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ProfiledDepScope(const ProfiledDepScope&) = delete;
  ProfiledDepScope& operator=(const ProfiledDepScope&) = delete;
  ~ProfiledDepScope() {
    if (active_) {
      auto elapsed = std::chrono::steady_clock::now() - start_;
      internal::ProfileAddTime(
          internal::profile_tls.dep,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                  .count()));
      internal::profile_tls = saved_;
    }
  }

 private:
  bool active_ = false;
  internal::ProfileTls saved_;
  std::chrono::steady_clock::time_point start_;
};

/// True iff profiling is on and a dependency scope is active on this
/// thread — the matcher's cheap guard before assembling per-atom samples.
inline bool ProfileSearchActive() {
  return internal::ProfilerEnabled() &&
         internal::profile_tls.dep != kProfileNoDep;
}

/// Records one finished homomorphism search against the active scope.
/// `atoms` is indexed by original body-atom position. Collect-phase
/// samples whose atom count matches the registered body feed the per-atom
/// rows and body totals; everything else (fire phase, or a nested search
/// over a different conjunction) pools into rhs_searches/rhs_backtracks.
void ProfileRecordSearch(uint64_t matches, uint64_t backtracks,
                         const std::vector<ProfileAtomCounters>& atoms);

/// Adds a sorted trigger batch's size to `dep`.
void ProfileRecordTriggers(uint32_t dep, uint64_t count);
/// Records one fire with its minted nulls and written facts.
void ProfileRecordFire(uint32_t dep, uint64_t nulls, uint64_t facts);
/// Records one skipped (already-satisfied) trigger.
void ProfileRecordSkip(uint32_t dep);

/// Adds pipeline-level outcome totals in bulk — how the inversion
/// pipelines flush their existing stats structs into their profiler
/// entry (candidates examined → triggers_found, units emitted → fired,
/// pruned → skipped).
void ProfileRecordOutcomes(uint32_t dep, uint64_t triggers, uint64_t fired,
                           uint64_t skipped);

#else  // QIMAP_OBS_DISABLE_PROFILER

// Compiled-out profiler: signature-compatible inline no-ops so call sites
// need no #ifdefs (kill-switch parity with the journal's
// QIMAP_OBS_DISABLE_PROVENANCE stubs).
class Profiler {
 public:
  static void Enable() {}
  static void Disable() {}
  static bool Enabled() { return false; }
  static void Reset() {}
  static uint32_t RegisterDep(const std::string&, const std::string&,
                              uint32_t) {
    return kProfileNoDep;
  }
  static ProfileSnapshot Snapshot() { return ProfileSnapshot{}; }
};

class ProfiledDepScope {
 public:
  ProfiledDepScope(uint32_t, ProfilePhase) {}
  ProfiledDepScope(const ProfiledDepScope&) = delete;
  ProfiledDepScope& operator=(const ProfiledDepScope&) = delete;
};

inline bool ProfileSearchActive() { return false; }
inline void ProfileRecordSearch(uint64_t, uint64_t,
                                const std::vector<ProfileAtomCounters>&) {}
inline void ProfileRecordTriggers(uint32_t, uint64_t) {}
inline void ProfileRecordFire(uint32_t, uint64_t, uint64_t) {}
inline void ProfileRecordSkip(uint32_t) {}
inline void ProfileRecordOutcomes(uint32_t, uint64_t, uint64_t, uint64_t) {}

#endif  // QIMAP_OBS_DISABLE_PROFILER

}  // namespace obs
}  // namespace qimap

#endif  // QIMAP_OBS_PROFILER_H_
