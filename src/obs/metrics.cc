#include "obs/metrics.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <mutex>

namespace qimap {
namespace obs {
namespace {

// Fixed per-shard capacity keeps the increment path branch-free apart
// from a bounds check: shards never reallocate, so readers can walk them
// without synchronizing with writers. Registrations past the cap are
// accepted but their updates are dropped (far above current usage).
constexpr size_t kMaxCounters = 256;
constexpr size_t kMaxGauges = 64;
constexpr size_t kMaxHistograms = 64;
constexpr size_t kHistBuckets = 64;

struct HistogramSlot {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  std::atomic<uint64_t> min{UINT64_MAX};
  std::atomic<uint64_t> max{0};
  std::atomic<uint64_t> buckets[kHistBuckets] = {};
};

// One thread's slice of every metric. Single writer (the owning thread),
// many readers (snapshots); all accesses are relaxed atomics.
struct Shard {
  std::atomic<uint64_t> counters[kMaxCounters] = {};
  HistogramSlot histograms[kMaxHistograms];
};

struct Registry {
  std::mutex mu;  // guards names and the shard list, never increments
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  std::vector<Shard*> shards;
  // Gauges are global last-write-wins values, not per-shard sums.
  std::atomic<int64_t> gauges[kMaxGauges] = {};

  static Registry& Get() {
    // Leaked on purpose: metrics must outlive every static destructor.
    static Registry* registry = new Registry;
    return *registry;
  }
};

Shard& LocalShard() {
  thread_local Shard* shard = [] {
    Shard* s = new Shard;  // retained for the life of the process so a
                           // thread's counts survive its exit
    Registry& reg = Registry::Get();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.shards.push_back(s);
    return s;
  }();
  return *shard;
}

MetricId RegisterIn(std::vector<std::string>* names,
                    const std::string& name) {
  Registry& reg = Registry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (size_t i = 0; i < names->size(); ++i) {
    if ((*names)[i] == name) return static_cast<MetricId>(i);
  }
  names->push_back(name);
  return static_cast<MetricId>(names->size() - 1);
}

size_t BucketIndex(uint64_t value) {
  size_t index = static_cast<size_t>(std::bit_width(value));
  return index < kHistBuckets ? index : kHistBuckets - 1;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

MetricId RegisterCounter(const std::string& name) {
  return RegisterIn(&Registry::Get().counter_names, name);
}

MetricId RegisterGauge(const std::string& name) {
  return RegisterIn(&Registry::Get().gauge_names, name);
}

MetricId RegisterHistogram(const std::string& name) {
  return RegisterIn(&Registry::Get().histogram_names, name);
}

void CounterAdd(MetricId id, uint64_t delta) {
  if (id >= kMaxCounters) return;
  LocalShard().counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void GaugeSet(MetricId id, int64_t value) {
  if (id >= kMaxGauges) return;
  Registry::Get().gauges[id].store(value, std::memory_order_relaxed);
}

void HistogramRecord(MetricId id, uint64_t value) {
  if (id >= kMaxHistograms) return;
  HistogramSlot& slot = LocalShard().histograms[id];
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(value, std::memory_order_relaxed);
  // Single writer per shard: load-compare-store needs no CAS loop.
  if (value < slot.min.load(std::memory_order_relaxed)) {
    slot.min.store(value, std::memory_order_relaxed);
  }
  if (value > slot.max.load(std::memory_order_relaxed)) {
    slot.max.store(value, std::memory_order_relaxed);
  }
  slot.buckets[BucketIndex(value)].fetch_add(1,
                                             std::memory_order_relaxed);
}

MetricsSnapshot SnapshotMetrics() {
  Registry& reg = Registry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  MetricsSnapshot snapshot;
  for (size_t i = 0; i < reg.counter_names.size() && i < kMaxCounters;
       ++i) {
    uint64_t total = 0;
    for (Shard* shard : reg.shards) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snapshot.counters[reg.counter_names[i]] = total;
  }
  for (size_t i = 0; i < reg.gauge_names.size() && i < kMaxGauges; ++i) {
    snapshot.gauges[reg.gauge_names[i]] =
        reg.gauges[i].load(std::memory_order_relaxed);
  }
  for (size_t i = 0;
       i < reg.histogram_names.size() && i < kMaxHistograms; ++i) {
    HistogramSnapshot hist;
    hist.min = UINT64_MAX;
    uint64_t bucket_totals[kHistBuckets] = {};
    for (Shard* shard : reg.shards) {
      const HistogramSlot& slot = shard->histograms[i];
      hist.count += slot.count.load(std::memory_order_relaxed);
      hist.sum += slot.sum.load(std::memory_order_relaxed);
      uint64_t lo = slot.min.load(std::memory_order_relaxed);
      uint64_t hi = slot.max.load(std::memory_order_relaxed);
      if (lo < hist.min) hist.min = lo;
      if (hi > hist.max) hist.max = hi;
      for (size_t b = 0; b < kHistBuckets; ++b) {
        bucket_totals[b] += slot.buckets[b].load(std::memory_order_relaxed);
      }
    }
    if (hist.count == 0) hist.min = 0;
    for (size_t b = 0; b < kHistBuckets; ++b) {
      if (bucket_totals[b] == 0) continue;
      uint64_t upper = b >= 63 ? UINT64_MAX : (uint64_t{1} << b);
      hist.buckets.emplace_back(upper, bucket_totals[b]);
    }
    snapshot.histograms[reg.histogram_names[i]] = std::move(hist);
  }
  return snapshot;
}

// Monotonic reset counter; see MetricsResetGeneration(). Starts at 1 so
// a cached generation of 0 ("never checked") always mismatches.
std::atomic<uint64_t> g_reset_generation{1};

uint64_t MetricsResetGeneration() {
  return g_reset_generation.load(std::memory_order_relaxed);
}

void ResetMetrics() {
  Registry& reg = Registry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  g_reset_generation.fetch_add(1, std::memory_order_relaxed);
  for (Shard* shard : reg.shards) {
    for (size_t i = 0; i < kMaxCounters; ++i) {
      shard->counters[i].store(0, std::memory_order_relaxed);
    }
    for (size_t i = 0; i < kMaxHistograms; ++i) {
      HistogramSlot& slot = shard->histograms[i];
      slot.count.store(0, std::memory_order_relaxed);
      slot.sum.store(0, std::memory_order_relaxed);
      slot.min.store(UINT64_MAX, std::memory_order_relaxed);
      slot.max.store(0, std::memory_order_relaxed);
      for (size_t b = 0; b < kHistBuckets; ++b) {
        slot.buckets[b].store(0, std::memory_order_relaxed);
      }
    }
  }
  for (size_t i = 0; i < kMaxGauges; ++i) {
    reg.gauges[i].store(0, std::memory_order_relaxed);
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": " + std::to_string(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": " + std::to_string(value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": {\"count\": " + std::to_string(hist.count) +
           ", \"sum\": " + std::to_string(hist.sum) +
           ", \"min\": " + std::to_string(hist.min) +
           ", \"max\": " + std::to_string(hist.max) + ", \"buckets\": [";
    for (size_t b = 0; b < hist.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "{\"lt\": " + std::to_string(hist.buckets[b].first) +
             ", \"count\": " + std::to_string(hist.buckets[b].second) +
             "}";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace obs
}  // namespace qimap
