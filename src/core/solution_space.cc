#include "core/solution_space.h"

#include <cstdio>
#include <cstdlib>

#include "dependency/satisfaction.h"

namespace qimap {

bool IsSolution(const SchemaMapping& m, const Instance& source_inst,
                const Instance& target_inst) {
  return SatisfiesAll(source_inst, target_inst, m);
}

Result<bool> SolutionsContained(const SchemaMapping& m,
                                const Instance& inner,
                                const Instance& outer) {
  QIMAP_ASSIGN_OR_RETURN(Instance inner_chase, Chase(inner, m));
  return IsSolution(m, outer, inner_chase);
}

Result<bool> SimEquivalent(const SchemaMapping& m, const Instance& i1,
                           const Instance& i2) {
  QIMAP_ASSIGN_OR_RETURN(bool forward, SolutionsContained(m, i1, i2));
  if (!forward) return false;
  return SolutionsContained(m, i2, i1);
}

bool MustSimEquivalent(const SchemaMapping& m, const Instance& i1,
                       const Instance& i2) {
  Result<bool> result = SimEquivalent(m, i1, i2);
  if (!result.ok()) {
    std::fprintf(stderr, "MustSimEquivalent: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return *result;
}

}  // namespace qimap
