#include "core/normalize.h"

#include <algorithm>
#include <map>
#include <set>

namespace qimap {

SchemaMapping NormalizeMapping(const SchemaMapping& m) {
  SchemaMapping out;
  out.source = m.source;
  out.target = m.target;
  for (const Tgd& tgd : m.tgds) {
    std::set<Value> existential;
    for (const Value& y : tgd.ExistentialVariables()) existential.insert(y);
    // Union-find over rhs atom indices, joined through shared
    // existential variables.
    std::vector<size_t> parent(tgd.rhs.size());
    for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
    auto find = [&](size_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    std::map<Value, size_t> first_seen;
    for (size_t i = 0; i < tgd.rhs.size(); ++i) {
      for (const Value& v : tgd.rhs[i].args) {
        if (!v.IsVariable() || existential.count(v) == 0) continue;
        auto [it, inserted] = first_seen.emplace(v, i);
        if (!inserted) parent[find(i)] = find(it->second);
      }
    }
    std::map<size_t, Conjunction> components;
    for (size_t i = 0; i < tgd.rhs.size(); ++i) {
      components[find(i)].push_back(tgd.rhs[i]);
    }
    for (auto& [root, rhs] : components) {
      Tgd piece;
      piece.lhs = tgd.lhs;
      piece.rhs = std::move(rhs);
      if (std::find(out.tgds.begin(), out.tgds.end(), piece) ==
          out.tgds.end()) {
        out.tgds.push_back(std::move(piece));
      }
    }
  }
  return out;
}

}  // namespace qimap
