#ifndef QIMAP_CORE_FORWARD_COMPOSITION_H_
#define QIMAP_CORE_FORWARD_COMPOSITION_H_

#include "base/status.h"
#include "dependency/schema_mapping.h"
#include "relational/instance.h"

namespace qimap {

/// Options for the forward-composition membership oracle.
struct ForwardCompositionOptions {
  /// Guard on the number of candidate null-assignments enumerated.
  size_t max_assignments = 1u << 22;
};

/// Decides `(i, k) ∈ Inst(M12 ∘ M23)` for consecutive schema mappings
/// given by s-t tgds (the composition semantics of Section 2): is there a
/// middle instance `J` with `(i, J) |= Sigma12` and `(J, k) |= Sigma23`?
///
/// Exact, by the same argument as the reverse-composition oracle: middle
/// witnesses can be restricted to homomorphic collapses of
/// `chase_Sigma12(i)` with values in `adom(i) ∪ adom(k) ∪ {fresh nulls}`.
/// `k` may contain nulls (they are treated as plain values).
///
/// `m23.source` must declare the same relations in the same order as
/// `m12.target` (relation ids are matched positionally).
Result<bool> InForwardComposition(
    const SchemaMapping& m12, const SchemaMapping& m23, const Instance& i,
    const Instance& k, const ForwardCompositionOptions& options = {});

/// Composes two schema mappings into one set of s-t tgds when the *first*
/// mapping is full — the classical unfolding construction (the positive
/// fragment of Fagin-Kolaitis-Popa-Tan's composition study, the paper's
/// [5]; with a non-full first mapping the composition may require
/// second-order tgds and this function refuses).
///
/// For each tgd `phi2 -> psi3` of `m23`, every way of resolving each
/// `phi2`-atom against a rhs atom of some `m12`-tgd (copies renamed
/// apart, variables unified) yields the composed tgd
/// `(conjunction of the chosen m12 lhs's) -> psi3`, both sides under the
/// unifier. The result is a schema mapping from `m12.source` to
/// `m23.target`.
Result<SchemaMapping> ComposeFullFirst(const SchemaMapping& m12,
                                       const SchemaMapping& m23);

}  // namespace qimap

#endif  // QIMAP_CORE_FORWARD_COMPOSITION_H_
