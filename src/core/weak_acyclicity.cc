#include "core/weak_acyclicity.h"

#include <map>
#include <set>
#include <utility>

namespace qimap {
namespace {

using Position = std::pair<RelationId, size_t>;

// Collects, per variable, the set of positions it occupies in the
// conjunction.
std::map<Value, std::set<Position>> PositionsOf(const Conjunction& conj) {
  std::map<Value, std::set<Position>> out;
  for (const Atom& atom : conj) {
    for (size_t p = 0; p < atom.args.size(); ++p) {
      if (atom.args[p].IsVariable()) {
        out[atom.args[p]].insert({atom.relation, p});
      }
    }
  }
  return out;
}

}  // namespace

bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds, const Schema& schema) {
  // Dense node ids for positions.
  std::map<Position, size_t> node_of;
  for (RelationId r = 0; r < schema.size(); ++r) {
    for (size_t p = 0; p < schema.relation(r).arity; ++p) {
      size_t id = node_of.size();
      node_of[{r, p}] = id;
    }
  }
  size_t n = node_of.size();
  // adjacency[u] = set of (v, special?) edges.
  std::vector<std::set<std::pair<size_t, bool>>> adjacency(n);

  for (const Tgd& tgd : tgds) {
    std::map<Value, std::set<Position>> lhs_positions =
        PositionsOf(tgd.lhs);
    std::map<Value, std::set<Position>> rhs_positions =
        PositionsOf(tgd.rhs);
    std::set<Value> lhs_vars = VariableSetOf(tgd.lhs);
    // Existential rhs positions.
    std::set<Position> existential_positions;
    for (const auto& [v, positions] : rhs_positions) {
      if (lhs_vars.count(v) == 0) {
        existential_positions.insert(positions.begin(), positions.end());
      }
    }
    for (const auto& [x, from_positions] : lhs_positions) {
      auto it = rhs_positions.find(x);
      if (it == rhs_positions.end()) continue;  // x not exported
      for (const Position& from : from_positions) {
        size_t u = node_of[from];
        for (const Position& to : it->second) {
          adjacency[u].insert({node_of[to], false});
        }
        for (const Position& to : existential_positions) {
          adjacency[u].insert({node_of[to], true});
        }
      }
    }
  }

  // Weakly acyclic iff no special edge lies inside a strongly connected
  // component. Iterative Tarjan SCC.
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  std::vector<size_t> component(n, 0);
  int next_index = 0;
  size_t next_component = 1;

  struct Frame {
    size_t node;
    std::set<std::pair<size_t, bool>>::const_iterator next;
  };
  for (size_t start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames;
    frames.push_back({start, adjacency[start].begin()});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      size_t u = frame.node;
      if (frame.next != adjacency[u].end()) {
        size_t v = frame.next->first;
        ++frame.next;
        if (index[v] == -1) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          frames.push_back({v, adjacency[v].begin()});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          size_t member;
          do {
            member = stack.back();
            stack.pop_back();
            on_stack[member] = false;
            component[member] = next_component;
          } while (member != u);
          ++next_component;
        }
        frames.pop_back();
        if (!frames.empty()) {
          size_t parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }

  for (size_t u = 0; u < n; ++u) {
    for (const auto& [v, special] : adjacency[u]) {
      if (special && component[u] == component[v]) return false;
    }
  }
  return true;
}

}  // namespace qimap
