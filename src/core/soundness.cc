#include "core/soundness.h"

#include "chase/chase.h"
#include "chase/solution_cache.h"
#include "relational/hom_cache.h"
#include "relational/homomorphism.h"

namespace qimap {

Result<RoundTrip> CheckRoundTrip(const SchemaMapping& m,
                                 const ReverseMapping& m_prime,
                                 const Instance& ground,
                                 const DisjunctiveChaseOptions& options) {
  QIMAP_ASSIGN_OR_RETURN(Instance universal, CachedChase(ground, m));
  QIMAP_ASSIGN_OR_RETURN(std::vector<Instance> recovered,
                         DisjunctiveChase(universal, m_prime, options));

  RoundTrip trip{std::move(universal), std::move(recovered), {}, false,
                 false, std::nullopt};
  trip.rechased.reserve(trip.recovered.size());
  for (size_t i = 0; i < trip.recovered.size(); ++i) {
    // Fresh nulls of the re-chase must not collide with the nulls already
    // present in V (which came from U and from the disjunctive chase).
    ChaseOptions chase_options;
    chase_options.first_null_label =
        std::max(trip.recovered[i].MaxNullLabel(),
                 trip.universal.MaxNullLabel()) +
        1;
    QIMAP_ASSIGN_OR_RETURN(
        Instance rechased,
        CachedChase(trip.recovered[i], m, chase_options));
    bool into = CachedExistsInstanceHomomorphism(rechased, trip.universal);
    if (into) {
      trip.sound = true;
      if (!trip.faithful &&
          CachedExistsInstanceHomomorphism(trip.universal, rechased)) {
        trip.faithful = true;
        trip.faithful_witness = i;
      }
    }
    trip.rechased.push_back(std::move(rechased));
  }
  return trip;
}

}  // namespace qimap
