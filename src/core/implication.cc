#include "core/implication.h"

#include <algorithm>
#include <set>
#include <string>

#include "chase/chase.h"
#include "core/sigma_star.h"
#include "relational/homomorphism.h"

namespace qimap {
namespace {

// One instantiation case for the lhs variables of a disjunctive tgd: a
// block id per variable plus a constant/null kind per block.
struct Shape {
  std::vector<size_t> block_of;    // per lhs variable
  std::vector<bool> block_is_constant;
};

// Enumerates the shapes consistent with the dependency's guards.
Result<std::vector<Shape>> ConsistentShapes(const DisjunctiveTgd& dep,
                                            const std::vector<Value>& vars,
                                            size_t max_shapes) {
  std::vector<Shape> shapes;
  auto index_of = [&vars](const Value& v) {
    return static_cast<size_t>(
        std::find(vars.begin(), vars.end(), v) - vars.begin());
  };
  for (const std::vector<size_t>& partition : SetPartitions(vars.size())) {
    // Inequality guards force distinct blocks.
    bool ok = true;
    for (const auto& [a, b] : dep.inequalities) {
      if (partition[index_of(a)] == partition[index_of(b)]) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    size_t num_blocks =
        vars.empty()
            ? 0
            : *std::max_element(partition.begin(), partition.end()) + 1;
    // Blocks containing a Constant-guarded variable must be constants.
    std::vector<bool> forced_constant(num_blocks, false);
    for (const Value& v : dep.constant_vars) {
      forced_constant[partition[index_of(v)]] = true;
    }
    // Enumerate the free blocks' kinds.
    std::vector<size_t> free_blocks;
    for (size_t b = 0; b < num_blocks; ++b) {
      if (!forced_constant[b]) free_blocks.push_back(b);
    }
    for (uint64_t mask = 0; mask < (1ull << free_blocks.size()); ++mask) {
      Shape shape;
      shape.block_of = partition;
      shape.block_is_constant = forced_constant;
      for (size_t i = 0; i < free_blocks.size(); ++i) {
        shape.block_is_constant[free_blocks[i]] = (mask >> i) & 1;
      }
      shapes.push_back(std::move(shape));
      if (shapes.size() > max_shapes) {
        return Status::ResourceExhausted(
            "implication shape analysis exceeded max_shapes");
      }
    }
  }
  return shapes;
}

}  // namespace

Result<bool> ImpliesTgd(const SchemaMapping& m, const Tgd& sigma) {
  Instance canonical = CanonicalInstance(sigma.lhs, m.source);
  QIMAP_ASSIGN_OR_RETURN(Instance chased, Chase(canonical, m));
  Assignment partial;
  for (const Value& v : VariablesOf(sigma.lhs)) partial.emplace(v, v);
  HomSearchOptions options;
  return FindHomomorphism(sigma.rhs, chased, partial, options).has_value();
}

Result<bool> EquivalentTgdSets(const SchemaMapping& a,
                               const SchemaMapping& b) {
  for (const Tgd& sigma : b.tgds) {
    QIMAP_ASSIGN_OR_RETURN(bool implied, ImpliesTgd(a, sigma));
    if (!implied) return false;
  }
  for (const Tgd& sigma : a.tgds) {
    QIMAP_ASSIGN_OR_RETURN(bool implied, ImpliesTgd(b, sigma));
    if (!implied) return false;
  }
  return true;
}

Result<bool> ImpliesDisjunctive(const ReverseMapping& premises,
                                const DisjunctiveTgd& conclusion,
                                const ImplicationOptions& options) {
  std::vector<Value> vars = VariablesOf(conclusion.lhs);
  QIMAP_ASSIGN_OR_RETURN(
      std::vector<Shape> shapes,
      ConsistentShapes(conclusion, vars, options.max_shapes));

  for (const Shape& shape : shapes) {
    // Instantiate the lhs: fresh constant "#ci" or fresh null per block.
    Assignment instantiation;
    for (size_t i = 0; i < vars.size(); ++i) {
      size_t block = shape.block_of[i];
      Value value =
          shape.block_is_constant[block]
              ? Value::MakeConstant("#c" + std::to_string(block + 1))
              : Value::MakeNull(static_cast<uint32_t>(1000 + block));
      instantiation.emplace(vars[i], value);
    }
    Conjunction instantiated =
        ApplyAssignmentToConjunction(conclusion.lhs, instantiation);
    Instance j0 = CanonicalInstance(instantiated, premises.from);

    // Close the source side under the premises; the conclusion must hold
    // in every leaf.
    QIMAP_ASSIGN_OR_RETURN(std::vector<Instance> leaves,
                           DisjunctiveChase(j0, premises, options.chase));
    for (const Instance& leaf : leaves) {
      bool satisfied = false;
      for (const Conjunction& disjunct : conclusion.disjuncts) {
        Conjunction mapped =
            ApplyAssignmentToConjunction(disjunct, instantiation);
        // Remaining variables are the disjunct's existentials; the shape
        // values (constants AND nulls) must stay fixed.
        HomSearchOptions hom_options;
        hom_options.map_nulls = false;
        if (FindHomomorphism(mapped, leaf, {}, hom_options).has_value()) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) return false;
    }
  }
  return true;
}

Result<bool> ImpliesReverseMapping(const ReverseMapping& premises,
                                   const ReverseMapping& conclusions,
                                   const ImplicationOptions& options) {
  for (const DisjunctiveTgd& dep : conclusions.deps) {
    QIMAP_ASSIGN_OR_RETURN(bool implied,
                           ImpliesDisjunctive(premises, dep, options));
    if (!implied) return false;
  }
  return true;
}

Result<bool> EquivalentReverseMappings(const ReverseMapping& a,
                                       const ReverseMapping& b,
                                       const ImplicationOptions& options) {
  QIMAP_ASSIGN_OR_RETURN(bool forward, ImpliesReverseMapping(a, b, options));
  if (!forward) return false;
  return ImpliesReverseMapping(b, a, options);
}

}  // namespace qimap
