#ifndef QIMAP_CORE_LAV_QUASI_INVERSE_H_
#define QIMAP_CORE_LAV_QUASI_INVERSE_H_

#include "base/status.h"
#include "dependency/schema_mapping.h"

namespace qimap {

class Budget;  // base/budget.h

/// Options for the LAV quasi-inverse construction.
struct LavQuasiInverseOptions {
  /// Shared resource governor (see ChaseOptions::budget); also handed to
  /// the inner prime-instance chases, so one budget bounds the whole
  /// inversion.
  Budget* budget = nullptr;
  /// Best-effort partial result on a budget trip: the reverse mapping with
  /// the dependencies derived so far, flagged `partial`. See
  /// ChaseOptions::partial_out.
  ReverseMapping* partial_out = nullptr;
};

/// The disjunction-free quasi-inverse construction for LAV schema mappings
/// (Theorem 4.7): every LAV mapping has a quasi-inverse specified by tgds
/// with constants and inequalities. For each prime atom `alpha` of each
/// source relation (Section 5) the construction emits
///
///   chase_Sigma(I_alpha)[nulls renamed to y1,y2,...]
///     & Constant(x_i)... & x_i != x_j ...  ->  exists u: alpha
///
/// where the guards range over the variables of `alpha` that the chase
/// propagates; the unpropagated ones stay existentially quantified in the
/// conclusion. This generalizes algorithm Inverse by dropping its
/// constant-propagation requirement — for LAV mappings the prime-atom
/// chase bundles everything the atom's relation implies, so firing the
/// rule recovers a ground instance that is `~M`-equivalent to the
/// original. Relations invisible to the target produce no dependency.
///
/// Returns FailedPrecondition if `m` is not LAV.
Result<ReverseMapping> LavQuasiInverse(
    const SchemaMapping& m, const LavQuasiInverseOptions& options = {});

/// Like LavQuasiInverse but aborts on error.
ReverseMapping MustLavQuasiInverse(const SchemaMapping& m);

}  // namespace qimap

#endif  // QIMAP_CORE_LAV_QUASI_INVERSE_H_
