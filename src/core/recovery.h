#ifndef QIMAP_CORE_RECOVERY_H_
#define QIMAP_CORE_RECOVERY_H_

#include "base/status.h"
#include "core/framework.h"
#include "dependency/schema_mapping.h"

namespace qimap {

/// Recovery analysis: the follow-up notion to this paper's inverses and
/// quasi-inverses (Arenas, Pérez, Riveros: "The recovery of a schema
/// mapping: bringing exchanged data back", PODS 2008). A reverse mapping
/// `M'` is a *recovery* of `M` when every ground instance stays related
/// to itself through the round trip — `(I, I) ∈ Inst(M ∘ M')` — i.e.
/// `M'` never rules the original source out. Among recoveries, the more
/// *informative* ones relate fewer spurious pairs.
///
/// These checks reuse the exact composition-membership oracle and sweep
/// the bounded space of BoundedSpace, so they slot into the same
/// verification story as the Definition 3.3 checkers.

/// Decides whether `m_prime` is a recovery of `m` over the bounded
/// space: `(I, I) ∈ Inst(M ∘ M')` for every enumerated ground instance.
/// On failure the counterexample field holds the offending instance
/// (twice).
Result<BoundedCheckReport> CheckRecovery(const SchemaMapping& m,
                                         const ReverseMapping& m_prime,
                                         const BoundedSpace& space);

/// Compares the informativeness of two recoveries over the bounded
/// space: returns true iff `Inst(M ∘ A) ⊆ Inst(M ∘ B)` on every
/// enumerated pair — then `A` is at least as informative as `B` (it
/// rules out every pair `B` rules out).
Result<bool> AtLeastAsInformative(const SchemaMapping& m,
                                  const ReverseMapping& a,
                                  const ReverseMapping& b,
                                  const BoundedSpace& space);

}  // namespace qimap

#endif  // QIMAP_CORE_RECOVERY_H_
