#include "core/quasi_inverse.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "base/budget.h"
#include "core/sigma_star.h"
#include "obs/budget_obs.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "relational/homomorphism.h"

namespace qimap {
namespace {

// Renames every '#'-prefixed fresh variable of the dependency to the first
// unused name among z1, z2, ... (fresh MinGen variables are generated as
// #z1, #z2, ... to avoid capture; this makes the output readable).
void PrettifyFreshVariables(DisjunctiveTgd* dep) {
  std::set<std::string> taken;
  auto collect = [&taken](const Conjunction& conj) {
    for (const Atom& atom : conj) {
      for (const Value& v : atom.args) {
        if (v.IsVariable()) taken.insert(v.ToString());
      }
    }
  };
  collect(dep->lhs);
  for (const Conjunction& d : dep->disjuncts) collect(d);

  std::map<Value, Value> rename;
  size_t next = 1;
  auto rename_value = [&](Value& v) {
    if (!v.IsVariable()) return;
    std::string name = v.ToString();
    if (name.empty() || name[0] != '#') return;
    auto it = rename.find(v);
    if (it == rename.end()) {
      std::string fresh;
      do {
        fresh = "z" + std::to_string(next++);
      } while (taken.count(fresh) > 0);
      taken.insert(fresh);
      it = rename.emplace(v, Value::MakeVariable(fresh)).first;
    }
    v = it->second;
  };
  for (Conjunction& d : dep->disjuncts) {
    for (Atom& atom : d) {
      for (Value& v : atom.args) rename_value(v);
    }
  }
}

}  // namespace

std::vector<Conjunction> PruneSubsumedConjunctions(
    const std::vector<Conjunction>& conjunctions,
    const std::vector<Value>& x, SchemaPtr schema) {
  std::vector<Conjunction> kept;
  for (const Conjunction& candidate : conjunctions) {
    bool subsumed = false;
    for (const Conjunction& existing : kept) {
      if (DisjunctSubsumes(existing, candidate, x, schema)) {
        subsumed = true;
        break;
      }
    }
    if (subsumed) continue;
    // The new member may be more general than ones kept earlier.
    std::vector<Conjunction> still_kept;
    for (Conjunction& existing : kept) {
      if (!DisjunctSubsumes(candidate, existing, x, schema)) {
        still_kept.push_back(std::move(existing));
      }
    }
    kept = std::move(still_kept);
    kept.push_back(candidate);
  }
  return kept;
}

bool DisjunctSubsumes(const Conjunction& general,
                      const Conjunction& specific,
                      const std::vector<Value>& x, SchemaPtr schema) {
  Instance canonical = CanonicalInstance(specific, std::move(schema));
  Assignment partial;
  for (const Value& v : x) partial.emplace(v, v);
  HomSearchOptions options;
  return FindHomomorphism(general, canonical, partial, options).has_value();
}

Result<ReverseMapping> QuasiInverse(const SchemaMapping& m,
                                    const QuasiInverseOptions& options) {
  static const obs::MetricId kLatency =
      obs::RegisterHistogram("qinv.latency_us");
  static const obs::MetricId kRuns = obs::RegisterCounter("qinv.runs");
  static const obs::MetricId kSigmaStar =
      obs::RegisterCounter("qinv.sigma_star_rules");
  static const obs::MetricId kRules =
      obs::RegisterCounter("qinv.rules_emitted");
  obs::ScopedLatency latency(kLatency);
  QIMAP_TRACE_SPAN("quasi_inverse/run");
  obs::JournalRun journal("quasi_inverse");
  obs::CounterAdd(kRuns);

  ReverseMapping reverse;
  reverse.from = m.target;
  reverse.to = m.source;

  RunBudget guard("QuasiInverse", 0, options.budget);
  // Ends the inversion on a budget trip: journal + budget.* metrics, then
  // the dependencies derived so far as the best-effort partial result.
  auto trip = [&](Status status) -> Status {
    obs::ReportBudgetTrip(journal, guard, status,
                          options.partial_out != nullptr);
    reverse.partial = true;
    if (options.partial_out != nullptr) {
      *options.partial_out = std::move(reverse);
    }
    return status;
  };

  std::vector<Tgd> sigma_star = SigmaStar(m);
  // Heartbeats: one step per sigma-star member; the member count is the
  // exact total. The MinGen searches underneath emit their own runs.
  obs::ProgressRun progress(
      "quasi_inverse",
      [&reverse]() {
        obs::ProgressSample sample;
        sample.fired = reverse.deps.size();
        return sample;
      },
      options.budget);
  progress.SetTotalEstimate(sigma_star.size());
  // Profiling: one entry per sigma-star member inverted. The MinGen
  // search (and its inner chases) attribute their own finer-grained
  // entries; this one carries the per-member wall time and outcome.
  std::vector<uint32_t> prof_deps(sigma_star.size(), obs::kProfileNoDep);
  if (obs::Profiler::Enabled()) {
    for (size_t si = 0; si < sigma_star.size(); ++si) {
      prof_deps[si] = obs::Profiler::RegisterDep(
          "quasi_inverse",
          TgdToString(sigma_star[si], *m.source, *m.target),
          static_cast<uint32_t>(sigma_star[si].lhs.size()));
    }
  }
  for (size_t si = 0; si < sigma_star.size(); ++si) {
    const Tgd& sigma = sigma_star[si];
    obs::ProfiledDepScope prof_scope(prof_deps[si],
                                     obs::ProfilePhase::kFire);
    {
      Status tick = guard.Tick();
      if (!tick.ok()) return trip(std::move(tick));
    }
    progress.Step();
    obs::CounterAdd(kSigmaStar);
    std::vector<Value> x = sigma.FrontierVariables();

    DisjunctiveTgd dep;
    dep.lhs = sigma.rhs;
    if (options.include_constant_predicates) {
      dep.constant_vars = x;
    }
    for (size_t i = 0; i < x.size(); ++i) {
      for (size_t j = i + 1; j < x.size(); ++j) {
        dep.inequalities.emplace_back(x[i], x[j]);
      }
    }

    // Route the MinGen stats through a local struct when the caller did
    // not ask for them: the generator event ids attribute this rule.
    MinGenOptions mingen_options = options.mingen;
    MinGenStats local_mingen_stats;
    if (mingen_options.stats == nullptr) {
      mingen_options.stats = &local_mingen_stats;
    }
    if (mingen_options.budget == nullptr) {
      mingen_options.budget = options.budget;
    }
    Result<std::vector<Conjunction>> found =
        MinGen(m, sigma.rhs, x, mingen_options);
    if (!found.ok()) {
      Status status = found.status();
      // MinGen already journaled its own trip; `trip` here hands the
      // caller the rules derived before the search ran out.
      if (status.code() == StatusCode::kResourceExhausted ||
          status.code() == StatusCode::kCancelled) {
        return trip(std::move(status));
      }
      return status;
    }
    std::vector<Conjunction> generators = std::move(found).value();
    if (generators.empty()) {
      // The lhs of sigma is itself a generator, so MinGen cannot come back
      // empty (see the remark after the algorithm in Section 4).
      return Status::Internal("MinGen returned no generators");
    }

    if (options.prune_subsumed_disjuncts) {
      generators = PruneSubsumedConjunctions(generators, x, m.source);
    }

    dep.disjuncts = std::move(generators);
    PrettifyFreshVariables(&dep);
    if (std::find(reverse.deps.begin(), reverse.deps.end(), dep) ==
        reverse.deps.end()) {
      if (journal.active()) {
        // Attribute the emitted rule to the sigma-star member it inverts,
        // parented on the MinGen generator events that supplied its
        // disjuncts (Theorem 4.1 construction).
        std::string x_text;
        for (const Value& v : x) {
          if (!x_text.empty()) x_text += ", ";
          x_text += v.ToString();
        }
        journal.RecordRule(DisjunctiveTgdToString(dep, *m.target, *m.source),
                           TgdToString(sigma, *m.source, *m.target),
                           static_cast<int32_t>(si), x_text,
                           mingen_options.stats->generator_event_ids);
      }
      reverse.deps.push_back(std::move(dep));
      obs::CounterAdd(kRules);
      obs::ProfileRecordOutcomes(prof_deps[si], 0, 1, 0);
    } else {
      obs::ProfileRecordOutcomes(prof_deps[si], 0, 0, 1);
    }
  }
  return reverse;
}

ReverseMapping MustQuasiInverse(const SchemaMapping& m,
                                const QuasiInverseOptions& options) {
  Result<ReverseMapping> reverse = QuasiInverse(m, options);
  if (!reverse.ok()) {
    std::fprintf(stderr, "MustQuasiInverse: %s\n",
                 reverse.status().ToString().c_str());
    std::abort();
  }
  return std::move(reverse).value();
}

}  // namespace qimap
