#include "core/lav_quasi_inverse.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "base/budget.h"
#include "chase/chase.h"
#include "core/inverse.h"
#include "obs/budget_obs.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "relational/atom.h"

namespace qimap {

Result<ReverseMapping> LavQuasiInverse(
    const SchemaMapping& m, const LavQuasiInverseOptions& options) {
  static const obs::MetricId kLatency =
      obs::RegisterHistogram("lavqinv.latency_us");
  static const obs::MetricId kRuns = obs::RegisterCounter("lavqinv.runs");
  static const obs::MetricId kPrimes =
      obs::RegisterCounter("lavqinv.prime_instances");
  static const obs::MetricId kRules =
      obs::RegisterCounter("lavqinv.rules_emitted");
  obs::ScopedLatency latency(kLatency);
  QIMAP_TRACE_SPAN("lav_quasi_inverse/run");
  obs::JournalRun journal("lav_quasi_inverse");
  obs::CounterAdd(kRuns);

  if (!m.IsLav()) {
    return Status::FailedPrecondition(
        "LavQuasiInverse requires a LAV schema mapping");
  }
  ReverseMapping reverse;
  reverse.from = m.target;
  reverse.to = m.source;

  RunBudget guard("LavQuasiInverse", 0, options.budget);
  // Ends the inversion on a budget trip: journal + budget.* metrics, then
  // the dependencies derived so far as the best-effort partial result.
  auto trip = [&](Status status) -> Status {
    obs::ReportBudgetTrip(journal, guard, status,
                          options.partial_out != nullptr);
    reverse.partial = true;
    if (options.partial_out != nullptr) {
      *options.partial_out = std::move(reverse);
    }
    return status;
  };
  ChaseOptions chase_options;
  chase_options.budget = options.budget;

  // Heartbeats: one step per prime instance inverted; the inner chases
  // emit their own runs.
  obs::ProgressRun progress(
      "lav_quasi_inverse",
      [&reverse]() {
        obs::ProgressSample sample;
        sample.fired = reverse.deps.size();
        return sample;
      },
      options.budget);

  // One dependency per prime instance, as in algorithm Inverse (Section 5)
  // but without the constant-propagation requirement: variables of the
  // prime atom that the chase does not propagate simply remain
  // existentially quantified in the conclusion, and no Constant(..) or
  // inequality conjunct mentions them. For LAV mappings the chase of a
  // prime atom is the conjunction of all right-hand sides its relation
  // triggers, which recovers the atom exactly up to ~M (Theorem 4.7).
  for (RelationId r = 0; r < m.source->size(); ++r) {
    for (const Atom& alpha : PrimeAtoms(*m.source, r)) {
      // Profiling: one entry per prime instance; the chase of its
      // canonical instance attributes its own dependencies on top.
      uint32_t prof_dep = obs::kProfileNoDep;
      if (obs::Profiler::Enabled()) {
        prof_dep = obs::Profiler::RegisterDep(
            "lav_quasi_inverse", AtomToString(alpha, *m.source), 1);
      }
      obs::ProfiledDepScope prof_scope(prof_dep,
                                       obs::ProfilePhase::kFire);
      {
        Status tick = guard.Tick();
        if (!tick.ok()) return trip(std::move(tick));
      }
      progress.Step();
      obs::CounterAdd(kPrimes);
      Instance canonical = CanonicalInstance({alpha}, m.source);
      Result<Instance> prime_chase = Chase(canonical, m, chase_options);
      if (!prime_chase.ok()) {
        // The inner chase journals and reports its own trip; `trip` then
        // hands the caller the rules derived before the budget ran out.
        Status status = prime_chase.status();
        if (guard.exhausted() ||
            status.code() == StatusCode::kResourceExhausted ||
            status.code() == StatusCode::kCancelled) {
          return trip(std::move(status));
        }
        return status;
      }
      Instance chased = std::move(prime_chase).value();
      if (chased.Empty()) {
        // The relation is invisible to the target; nothing can be
        // recovered for it (and no dependency is emitted).
        continue;
      }

      DisjunctiveTgd dep;
      std::map<Value, Value> null_to_var;
      std::set<Value> propagated;
      for (const Fact& fact : chased.Facts()) {
        Atom atom;
        atom.relation = fact.relation;
        for (const Value& v : fact.tuple) {
          if (v.IsNull()) {
            auto it = null_to_var.find(v);
            if (it == null_to_var.end()) {
              it = null_to_var
                       .emplace(v, Value::MakeVariable(
                                       "y" + std::to_string(
                                                 null_to_var.size() + 1)))
                       .first;
            }
            atom.args.push_back(it->second);
          } else {
            if (v.IsVariable()) propagated.insert(v);
            atom.args.push_back(v);
          }
        }
        dep.lhs.push_back(std::move(atom));
      }

      // Guards only over the propagated variables of alpha.
      std::vector<Value> guarded;
      for (const Value& v : alpha.args) {
        if (propagated.count(v) > 0 &&
            std::find(guarded.begin(), guarded.end(), v) == guarded.end()) {
          guarded.push_back(v);
        }
      }
      dep.constant_vars = guarded;
      for (size_t i = 0; i < guarded.size(); ++i) {
        for (size_t j = i + 1; j < guarded.size(); ++j) {
          dep.inequalities.emplace_back(guarded[i], guarded[j]);
        }
      }
      dep.disjuncts.push_back(Conjunction{alpha});
      if (std::find(reverse.deps.begin(), reverse.deps.end(), dep) ==
          reverse.deps.end()) {
        if (journal.active()) {
          // Attribute the rule to the prime instance whose chase built
          // its lhs (Theorem 4.7 construction).
          std::string alpha_text = AtomToString(alpha, *m.source);
          uint64_t prime_id = journal.RecordBaseFact(alpha_text);
          journal.RecordRule(
              DisjunctiveTgdToString(dep, *m.target, *m.source), alpha_text,
              static_cast<int32_t>(reverse.deps.size()),
              ConjunctionToString(dep.lhs, *m.target), {prime_id});
        }
        reverse.deps.push_back(std::move(dep));
        obs::CounterAdd(kRules);
        obs::ProfileRecordOutcomes(prof_dep, 1, 1, 0);
      } else {
        obs::ProfileRecordOutcomes(prof_dep, 1, 0, 1);
      }
    }
  }
  return reverse;
}

ReverseMapping MustLavQuasiInverse(const SchemaMapping& m) {
  Result<ReverseMapping> reverse = LavQuasiInverse(m);
  if (!reverse.ok()) {
    std::fprintf(stderr, "MustLavQuasiInverse: %s\n",
                 reverse.status().ToString().c_str());
    std::abort();
  }
  return std::move(reverse).value();
}

}  // namespace qimap
