#include "core/mingen.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "base/budget.h"
#include "chase/chase.h"
#include "obs/budget_obs.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "relational/homomorphism.h"

namespace qimap {
namespace {

// Mirrors one run's totals into the process-wide metrics registry.
void FlushMinGenMetrics(const MinGenStats& st) {
  static const obs::MetricId kRuns = obs::RegisterCounter("mingen.runs");
  static const obs::MetricId kCandidates =
      obs::RegisterCounter("mingen.candidates");
  static const obs::MetricId kDedup =
      obs::RegisterCounter("mingen.dedup_pruned");
  static const obs::MetricId kDominated =
      obs::RegisterCounter("mingen.dominated_pruned");
  static const obs::MetricId kTests =
      obs::RegisterCounter("mingen.generator_tests");
  static const obs::MetricId kGenerators =
      obs::RegisterCounter("mingen.generators");
  obs::CounterAdd(kRuns);
  obs::CounterAdd(kCandidates, st.candidates);
  obs::CounterAdd(kDedup, st.dedup_pruned);
  obs::CounterAdd(kDominated, st.dominated_pruned);
  obs::CounterAdd(kTests, st.generator_tests);
  obs::CounterAdd(kGenerators, st.generators);
}

// Fresh generator variables #z1, #z2, ... ('#' cannot appear in parsed
// dependencies, so they never collide with user variables).
Value FreshZ(size_t index) {
  return Value::MakeVariable("#z" + std::to_string(index + 1));
}

bool ContainsAllX(const Conjunction& beta, const std::vector<Value>& x) {
  std::set<Value> vars = VariableSetOf(beta);
  for (const Value& v : x) {
    if (vars.count(v) == 0) return false;
  }
  return true;
}

// Near-canonical key for a candidate conjunction, up to renaming of the
// fresh #z variables: sort, rename by first occurrence, sort, rename,
// render. Imperfect canonicalization only costs duplicated search work;
// the final minimization deduplicates exactly.
std::string CanonicalKey(Conjunction conj, const std::set<Value>& x_set) {
  for (int round = 0; round < 2; ++round) {
    std::sort(conj.begin(), conj.end());
    std::map<Value, Value> rename;
    size_t next = 0;
    for (Atom& atom : conj) {
      for (Value& v : atom.args) {
        if (!v.IsVariable() || x_set.count(v) > 0) continue;
        auto it = rename.find(v);
        if (it == rename.end()) {
          it = rename.emplace(v, FreshZ(next++)).first;
        }
        v = it->second;
      }
    }
  }
  std::sort(conj.begin(), conj.end());
  std::string key;
  for (const Atom& atom : conj) {
    key += std::to_string(atom.relation);
    key += '(';
    for (const Value& v : atom.args) {
      key += v.ToString();
      key += ',';
    }
    key += ')';
  }
  return key;
}

// Backtracking embedding of `small`'s atoms into `big`'s atoms where the
// `x` variables are fixed and the other variables map injectively to
// non-x variables of `big`.
bool Embed(const Conjunction& small, const Conjunction& big,
           const std::set<Value>& x_set, size_t index,
           std::map<Value, Value>* mapping, std::set<Value>* used) {
  if (index == small.size()) return true;
  const Atom& atom = small[index];
  for (const Atom& candidate : big) {
    if (candidate.relation != atom.relation) continue;
    std::vector<Value> bound;
    bool ok = true;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Value& from = atom.args[i];
      const Value& to = candidate.args[i];
      if (!from.IsVariable() || x_set.count(from) > 0) {
        if (from != to) {
          ok = false;
          break;
        }
        continue;
      }
      // A fresh variable: must map to a non-x variable, injectively.
      auto it = mapping->find(from);
      if (it != mapping->end()) {
        if (it->second != to) {
          ok = false;
          break;
        }
        continue;
      }
      if (!to.IsVariable() || x_set.count(to) > 0 || used->count(to) > 0) {
        ok = false;
        break;
      }
      mapping->emplace(from, to);
      used->insert(to);
      bound.push_back(from);
    }
    if (ok && Embed(small, big, x_set, index + 1, mapping, used)) {
      return true;
    }
    for (const Value& v : bound) {
      used->erase(mapping->at(v));
      mapping->erase(v);
    }
  }
  return false;
}

// Enumerates every atom that may extend a candidate that currently uses
// `used_z` fresh variables: arguments come from `x`, the used fresh
// variables, or new fresh variables introduced left-to-right in index
// order.
void EnumerateAtoms(const Schema& schema, const std::vector<Value>& x,
                    size_t used_z, std::vector<Atom>* out) {
  for (RelationId r = 0; r < schema.size(); ++r) {
    uint32_t arity = schema.relation(r).arity;
    // Recursive position filling.
    struct Filler {
      const std::vector<Value>& x;
      uint32_t arity;
      RelationId relation;
      std::vector<Atom>* out;
      std::vector<Value> args;

      void Fill(size_t pos, size_t z_avail, size_t z_base) {
        if (pos == arity) {
          out->push_back(Atom{relation, args});
          return;
        }
        for (const Value& v : x) {
          args.push_back(v);
          Fill(pos + 1, z_avail, z_base);
          args.pop_back();
        }
        for (size_t i = 0; i < z_avail; ++i) {
          args.push_back(FreshZ(i));
          Fill(pos + 1, z_avail, z_base);
          args.pop_back();
        }
        // Introduce the next fresh variable (exactly one new choice keeps
        // the enumeration canonical up to renaming).
        args.push_back(FreshZ(z_avail));
        Fill(pos + 1, z_avail + 1, z_base);
        args.pop_back();
      }
    };
    Filler filler{x, arity, r, out, {}};
    filler.Fill(0, used_z, used_z);
  }
}

size_t CountFreshZ(const Conjunction& conj, const std::set<Value>& x_set) {
  std::set<Value> fresh;
  for (const Atom& atom : conj) {
    for (const Value& v : atom.args) {
      if (v.IsVariable() && x_set.count(v) == 0) fresh.insert(v);
    }
  }
  return fresh.size();
}

}  // namespace

Result<bool> IsGenerator(const SchemaMapping& m, const Conjunction& beta,
                         const Conjunction& psi,
                         const std::vector<Value>& x, Budget* budget) {
  Instance canonical = CanonicalInstance(beta, m.source);
  ChaseOptions chase_options;
  chase_options.budget = budget;
  QIMAP_ASSIGN_OR_RETURN(Instance chased,
                         Chase(canonical, m, chase_options));
  // The shared variables are frozen: psi must embed into the chase with
  // each x mapped to itself; the existential y map anywhere.
  Assignment partial;
  for (const Value& v : x) partial.emplace(v, v);
  HomSearchOptions options;
  return FindHomomorphism(psi, chased, partial, options).has_value();
}

bool IsSubConjunctionUpToRenaming(const Conjunction& small,
                                  const Conjunction& big,
                                  const std::vector<Value>& x) {
  if (small.size() > big.size()) return false;
  std::set<Value> x_set(x.begin(), x.end());
  std::map<Value, Value> mapping;
  std::set<Value> used;
  return Embed(small, big, x_set, 0, &mapping, &used);
}

Result<std::vector<Conjunction>> MinGen(const SchemaMapping& m,
                                        const Conjunction& psi,
                                        const std::vector<Value>& x,
                                        const MinGenOptions& options) {
  static const obs::MetricId kLatency =
      obs::RegisterHistogram("mingen.latency_us");
  obs::ScopedLatency latency(kLatency);
  QIMAP_TRACE_SPAN("mingen/search");

  // Profiling: one entry per search unit (the conjunction being
  // inverted). The frozen-x psi-embedding searches of the generator
  // tests attribute per-atom to this entry; each test's inner chase
  // registers and attributes its own dependencies on top, so hot-spot
  // data aggregates across all of MinGen's chases.
  uint32_t prof_dep = obs::kProfileNoDep;
  if (obs::Profiler::Enabled()) {
    prof_dep = obs::Profiler::RegisterDep(
        "mingen", ConjunctionToString(psi, *m.target),
        static_cast<uint32_t>(psi.size()));
  }
  obs::ProfiledDepScope prof_scope(prof_dep, obs::ProfilePhase::kCollect);

  // Lemma 4.4: minimal generators have at most s1*s2 conjuncts.
  size_t s1 = 0;
  for (const Tgd& tgd : m.tgds) s1 = std::max(s1, tgd.lhs.size());
  size_t max_atoms =
      options.max_atoms != 0 ? options.max_atoms : s1 * psi.size();
  std::set<Value> x_set(x.begin(), x.end());

  MinGenStats local_stats;
  MinGenStats& st = options.stats != nullptr ? *options.stats : local_stats;
  st = MinGenStats{};
  // Flush whatever was counted on every exit path, including errors. The
  // profiler entry reuses the same stats: candidates examined land in
  // triggers_found, minimal generators in fired, pruned candidates in
  // skipped.
  struct Flusher {
    MinGenStats* st;
    uint32_t prof_dep;
    ~Flusher() {
      FlushMinGenMetrics(*st);
      obs::ProfileRecordOutcomes(prof_dep, st->candidates, st->generators,
                                 st->dedup_pruned + st->dominated_pruned);
    }
  } flusher{&st, prof_dep};

  std::vector<Conjunction> generators;
  std::vector<Conjunction> frontier = {Conjunction{}};
  std::set<std::string> seen;

  // The candidate valve doubles as the run's local step limit; the shared
  // budget adds deadline/memory/null/cancellation governance on top.
  RunBudget guard("MinGen", options.max_candidates, options.budget,
                  "(raise MinGenOptions::max_candidates)");
  // Heartbeats over the candidate enumeration; the candidate valve is
  // the natural total (the run cannot outlast it).
  obs::ProgressRun progress(
      "mingen",
      [&st]() {
        obs::ProgressSample sample;
        sample.facts = st.generator_tests;
        sample.fired = st.generators;
        sample.skipped = st.dedup_pruned + st.dominated_pruned;
        return sample;
      },
      options.budget);
  progress.SetTotalEstimate(options.max_candidates);
  // Ends the search on a budget trip: journal + budget.* metrics, then
  // the generators found so far (unminimized) as the partial result. The
  // rule events of a tripped run are never emitted, so the ad-hoc journal
  // run only ever carries this budget event.
  auto trip = [&](Status status) -> Status {
    st.partial = true;
    obs::JournalRun trip_journal("mingen");
    obs::ReportBudgetTrip(trip_journal, guard, status,
                          options.partial_out != nullptr);
    if (options.partial_out != nullptr) {
      *options.partial_out = std::move(generators);
    }
    return status;
  };

  for (size_t size = 1; size <= max_atoms && !frontier.empty(); ++size) {
    std::vector<Conjunction> next_frontier;
    for (const Conjunction& current : frontier) {
      size_t used_z = CountFreshZ(current, x_set);
      std::vector<Atom> extensions;
      EnumerateAtoms(*m.source, x, used_z, &extensions);
      for (const Atom& atom : extensions) {
        if (std::find(current.begin(), current.end(), atom) !=
            current.end()) {
          continue;
        }
        Conjunction child = current;
        child.push_back(atom);
        if (options.dedup_candidates) {
          std::string key = CanonicalKey(child, x_set);
          if (!seen.insert(std::move(key)).second) {
            ++st.dedup_pruned;
            continue;
          }
        }
        // Strict supersets of a found generator are never minimal.
        bool dominated = false;
        for (const Conjunction& g : generators) {
          if (IsSubConjunctionUpToRenaming(g, child, x)) {
            dominated = true;
            break;
          }
        }
        if (dominated) {
          ++st.dominated_pruned;
          continue;
        }
        {
          Status tick = guard.Tick();
          if (!tick.ok()) return trip(std::move(tick));
        }
        progress.Step();
        ++st.candidates;
        bool is_generator = false;
        if (ContainsAllX(child, x)) {
          ++st.generator_tests;
          Result<bool> tested =
              IsGenerator(m, child, psi, x, options.budget);
          if (!tested.ok()) {
            // The inner chase journals its own trip; here we only hand
            // back the partial generator list.
            if (guard.exhausted()) return trip(tested.status());
            return tested.status();
          }
          is_generator = *tested;
        }
        if (is_generator) {
          generators.push_back(std::move(child));
        } else if (size < max_atoms) {
          next_frontier.push_back(std::move(child));
        }
      }
    }
    frontier = std::move(next_frontier);
  }

  // Paper's Step 3 (minimize): drop duplicates up to renaming, then any
  // member containing another as a sub-conjunction. Level-order search
  // makes strict supersets rare, but near-canonical dedup can leave
  // renaming-equal twins.
  std::vector<Conjunction> minimal;
  for (const Conjunction& g : generators) {
    bool drop = false;
    for (const Conjunction& kept : minimal) {
      if (IsSubConjunctionUpToRenaming(kept, g, x)) {
        drop = true;
        break;
      }
    }
    if (!drop) minimal.push_back(g);
  }
  st.generators = minimal.size();
  // Provenance: one rule event per minimal generator, attributing it to
  // the conjunction it generates; ids flow back through the stats so
  // QuasiInverse can parent its emitted rules on them.
  obs::JournalRun journal("mingen");
  if (journal.active()) {
    std::string psi_text = ConjunctionToString(psi, *m.target);
    std::string x_text;
    for (const Value& v : x) {
      if (!x_text.empty()) x_text += ", ";
      x_text += v.ToString();
    }
    for (const Conjunction& g : minimal) {
      st.generator_event_ids.push_back(journal.RecordRule(
          ConjunctionToString(g, *m.source), psi_text, -1, x_text, {}));
    }
  }
  return minimal;
}

}  // namespace qimap
