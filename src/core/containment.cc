#include "core/containment.h"

#include <algorithm>
#include <string>
#include <utility>

#include "chase/chase.h"
#include "chase/solution_cache.h"
#include "obs/budget_obs.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "relational/atom.h"
#include "relational/homomorphism.h"

namespace qimap {
namespace {

// Freezes the lhs variables of a conclusion dependency to fresh, pairwise
// distinct constants. Chasing the frozen canonical instance (instead of
// the variable one that core/implication.cc uses) makes a negative
// verdict directly reusable: the instance is ground, so it IS the
// counterexample source instance.
Assignment FreezeLhs(const Tgd& sigma) {
  Assignment frozen;
  size_t next = 0;
  for (const Value& v : VariablesOf(sigma.lhs)) {
    ++next;
    frozen.emplace(v, Value::MakeConstant("#f" + std::to_string(next)));
  }
  return frozen;
}

bool SameSchema(const SchemaPtr& a, const SchemaPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->ToString() == b->ToString();
}

}  // namespace

std::string ContainmentReport::Summary() const {
  if (holds) {
    std::string out = "contained (" + std::to_string(tgds_checked) +
                      " dependencies, " + std::to_string(chases) +
                      " chases, " + std::to_string(syntactic_hits) +
                      " syntactic)";
    if (partial) out += " [partial]";
    return out;
  }
  std::string out = "NOT contained; first violated dependency: " + witness;
  if (partial) out += " [partial]";
  return out;
}

Result<ContainmentReport> CheckContainment(const SchemaMapping& sub,
                                           const SchemaMapping& super,
                                           const ContainmentOptions& options) {
  static const obs::MetricId kLatency =
      obs::RegisterHistogram("containment.latency_us");
  static const obs::MetricId kRuns =
      obs::RegisterCounter("containment.runs");
  static const obs::MetricId kChecked =
      obs::RegisterCounter("containment.tgds_checked");
  static const obs::MetricId kChases =
      obs::RegisterCounter("containment.chases");
  static const obs::MetricId kSyntactic =
      obs::RegisterCounter("containment.syntactic_hits");
  static const obs::MetricId kViolations =
      obs::RegisterCounter("containment.violations");
  obs::ScopedLatency latency(kLatency);
  QIMAP_TRACE_SPAN("containment/run");
  obs::JournalRun journal("containment");
  obs::CounterAdd(kRuns);

  if (!SameSchema(sub.source, super.source) ||
      !SameSchema(sub.target, super.target)) {
    return Status::FailedPrecondition(
        "CheckContainment requires mappings over the same schemas");
  }

  ContainmentReport report;
  report.holds = true;

  RunBudget guard("Containment", 0, options.budget);
  // Ends the check on a budget trip: journal + budget.* metrics, then the
  // verdicts reached so far as the best-effort partial result.
  auto trip = [&](Status status) -> Status {
    obs::ReportBudgetTrip(journal, guard, status,
                          options.partial_out != nullptr);
    report.partial = true;
    if (options.partial_out != nullptr) {
      *options.partial_out = std::move(report);
    }
    return status;
  };
  ChaseOptions chase_options;
  chase_options.budget = options.budget;
  chase_options.num_threads = options.num_threads;

  // Heartbeats: one step per conclusion dependency decided; the inner
  // chases emit their own runs.
  obs::ProgressRun progress(
      "containment",
      [&report]() {
        obs::ProgressSample sample;
        sample.fired = report.verdicts.size();
        return sample;
      },
      options.budget);

  for (size_t index = 0; index < super.tgds.size(); ++index) {
    const Tgd& sigma = super.tgds[index];
    std::string sigma_text = TgdToString(sigma, *super.source, *super.target);
    // Profiling: one entry per conclusion dependency; the chase of its
    // frozen canonical instance attributes its own dependencies on top.
    uint32_t prof_dep = obs::kProfileNoDep;
    if (obs::Profiler::Enabled()) {
      prof_dep = obs::Profiler::RegisterDep("containment", sigma_text,
                                            sigma.lhs.size());
    }
    obs::ProfiledDepScope prof_scope(prof_dep, obs::ProfilePhase::kFire);
    {
      Status tick = guard.Tick();
      if (!tick.ok()) return trip(std::move(tick));
    }
    progress.Step();
    obs::CounterAdd(kChecked);

    ContainmentVerdict verdict;
    verdict.index = index;
    verdict.dependency = sigma_text;

    // Syntactic fast path: a dependency of Sigma is implied for free.
    if (std::find(sub.tgds.begin(), sub.tgds.end(), sigma) !=
        sub.tgds.end()) {
      verdict.implied = true;
      verdict.syntactic = true;
      ++report.syntactic_hits;
      obs::CounterAdd(kSyntactic);
    } else {
      // The chase test: chase the frozen canonical instance of
      // `sigma.lhs` with Sigma and ask whether `sigma.rhs` (with the
      // frontier frozen the same way) embeds into the result.
      Assignment frozen = FreezeLhs(sigma);
      Conjunction ground_lhs =
          ApplyAssignmentToConjunction(sigma.lhs, frozen);
      Instance canonical = CanonicalInstance(ground_lhs, sub.source);
      ++report.chases;
      obs::CounterAdd(kChases);
      Result<Instance> chase =
          options.use_solution_cache
              ? CachedChase(canonical, sub, chase_options)
              : Chase(canonical, sub, chase_options);
      if (!chase.ok()) {
        // The inner chase journals and reports its own trip; `trip` then
        // hands the caller the verdicts reached before the budget ran
        // out.
        Status status = chase.status();
        if (guard.exhausted() ||
            status.code() == StatusCode::kResourceExhausted ||
            status.code() == StatusCode::kCancelled) {
          return trip(std::move(status));
        }
        return status;
      }
      Instance chased = std::move(chase).value();
      Conjunction mapped_rhs =
          ApplyAssignmentToConjunction(sigma.rhs, frozen);
      // Only the existentials remain as variables; the frozen frontier
      // constants must match themselves.
      HomSearchOptions hom_options;
      verdict.implied =
          FindHomomorphism(mapped_rhs, chased, {}, hom_options).has_value();
      if (!verdict.implied && report.holds) {
        report.holds = false;
        report.witness = sigma_text;
        report.counterexample = std::move(canonical);
        report.counterexample_chase = std::move(chased);
      }
      if (!verdict.implied) obs::CounterAdd(kViolations);
    }

    if (journal.active()) {
      uint64_t dep_id = journal.RecordBaseFact(sigma_text);
      journal.RecordRule(verdict.implied ? "implied" : "violated",
                         sigma_text, static_cast<int32_t>(index),
                         verdict.syntactic ? "syntactic" : "chase test",
                         {dep_id});
    }
    obs::ProfileRecordOutcomes(prof_dep, 1, verdict.implied ? 1 : 0,
                               verdict.implied ? 0 : 1);
    ++report.tgds_checked;
    report.verdicts.push_back(std::move(verdict));
  }
  return report;
}

Result<bool> MappingContained(const SchemaMapping& sub,
                              const SchemaMapping& super) {
  QIMAP_ASSIGN_OR_RETURN(ContainmentReport report,
                         CheckContainment(sub, super));
  return report.holds;
}

}  // namespace qimap
