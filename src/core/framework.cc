#include "core/framework.h"

#include <map>
#include <utility>

#include "chase/chase.h"
#include "chase/solution_cache.h"
#include "core/solution_space.h"
#include "dependency/satisfaction.h"
#include "relational/hom_cache.h"
#include "relational/homomorphism.h"
#include "relational/instance_enum.h"

namespace qimap {

const char* EquivKindName(EquivKind kind) {
  switch (kind) {
    case EquivKind::kEquality:
      return "=";
    case EquivKind::kSimM:
      return "~M";
  }
  return "?";
}

FrameworkChecker::FrameworkChecker(const SchemaMapping& m,
                                   BoundedSpace space)
    : m_(m), space_(std::move(space)) {
  if (space_.witness_max_facts == 0) {
    space_.witness_max_facts = 2 * space_.max_facts;
  }
  lav_ = m_.IsLav();
}

Status FrameworkChecker::Prepare() {
  if (prepared_) return Status::OK();

  // For LAV mappings witnesses come from class saturation, so only the
  // main space is materialized; non-LAV mappings enumerate the larger
  // witness space.
  size_t enumerate_up_to =
      lav_ ? space_.max_facts
           : std::max(space_.max_facts, space_.witness_max_facts);
  EnumerationSpace enum_space{m_.source, space_.domain, enumerate_up_to};
  ForEachInstance(enum_space, [&](const Instance& inst) {
    instances_.push_back(inst);
    return true;
  });
  domain_facts_ = AllFactsOver(*m_.source, space_.domain);

  for (size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].NumFacts() <= space_.max_facts) {
      main_indices_.push_back(i);
    }
  }

  // Chase every instance once; later passes (SaturateClass, the
  // subset-property walk) re-ask for the same Sol(M, I) and hit the
  // solution cache instead of re-chasing.
  chases_.reserve(instances_.size());
  for (const Instance& inst : instances_) {
    Result<Instance> chased = CachedChase(inst, m_);
    if (!chased.ok()) return chased.status();
    chases_.push_back(std::move(chased).value());
  }

  // ~M classes. Sol(M, I) is the set of homomorphic supersets of
  // chase(I), so I ~M I' iff the two chases are homomorphically
  // equivalent. Instances whose chases render identically are equivalent
  // outright, so bucket by the rendered chase first and run the quadratic
  // homomorphic-equivalence union-find over bucket representatives only
  // (for full mappings the chases are ground and every class is a single
  // bucket, making this linear).
  std::vector<size_t> parent(instances_.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::map<std::string, size_t> bucket_representative;
  std::vector<size_t> representatives;
  for (size_t i = 0; i < instances_.size(); ++i) {
    auto [it, inserted] =
        bucket_representative.emplace(chases_[i].ToString(), i);
    if (inserted) {
      representatives.push_back(i);
    } else {
      parent[i] = it->second;
    }
  }
  for (size_t ri = 0; ri < representatives.size(); ++ri) {
    for (size_t rj = ri + 1; rj < representatives.size(); ++rj) {
      size_t i = representatives[ri];
      size_t j = representatives[rj];
      if (find(i) == find(j)) continue;
      if (CachedHomomorphicallyEquivalent(chases_[i], chases_[j])) {
        parent[find(j)] = find(i);
      }
    }
  }
  std::map<size_t, size_t> root_to_class;
  class_id_.resize(instances_.size());
  for (size_t i = 0; i < instances_.size(); ++i) {
    size_t root = find(i);
    auto [it, inserted] =
        root_to_class.emplace(root, root_to_class.size());
    class_id_[i] = it->second;
    if (inserted) class_members_.emplace_back();
    class_members_[class_id_[i]].push_back(i);
  }
  num_classes_ = class_members_.size();
  saturated_.resize(num_classes_);

  prepared_ = true;
  return Status::OK();
}

Result<Instance> FrameworkChecker::SaturateClass(const Instance& inst) {
  QIMAP_RETURN_IF_ERROR(Prepare());
  QIMAP_ASSIGN_OR_RETURN(Instance chased, CachedChase(inst, m_));
  // Umax = { f over the domain : Sol(inst) ⊆ Sol({f}) }. For LAV
  // mappings every constraint involves a single fact, so
  // Sol(A) = ⋂_{f ∈ A} Sol({f}); hence Sol(Umax) = Sol(inst), every
  // equivalent domain instance is a subset of Umax, and Umax is the class
  // maximum.
  Instance umax(m_.source);
  for (const Fact& fact : domain_facts_) {
    Instance single(m_.source);
    QIMAP_RETURN_IF_ERROR(single.AddFact(fact.relation, fact.tuple));
    if (IsSolution(m_, single, chased)) {
      QIMAP_RETURN_IF_ERROR(umax.AddFact(fact.relation, fact.tuple));
    }
  }
  umax.UnionWith(inst);  // facts outside the domain are preserved
  return umax;
}

Result<const Instance*> FrameworkChecker::SaturatedOf(size_t index) {
  size_t cls = class_id_[index];
  if (!saturated_[cls].has_value()) {
    QIMAP_ASSIGN_OR_RETURN(Instance umax,
                           SaturateClass(instances_[index]));
    saturated_[cls] = std::move(umax);
  }
  return &*saturated_[cls];
}

Result<bool> FrameworkChecker::Statement1(size_t a, size_t b,
                                          EquivKind eq1, EquivKind eq2) {
  // Resolve the second component: under equality the only candidate is
  // I2; for LAV mappings WLOG the class maximum Umax (any witness I2' is
  // a subset of it and it is itself equivalent to I2).
  if (eq2 == EquivKind::kEquality || lav_) {
    const Instance* i2max = &instances_[b];
    if (eq2 == EquivKind::kSimM) {
      QIMAP_ASSIGN_OR_RETURN(i2max, SaturatedOf(b));
    }
    if (eq1 == EquivKind::kEquality) {
      return instances_[a].IsSubsetOf(*i2max);
    }
    // Fast path: I1 itself below the maximum.
    if (instances_[a].IsSubsetOf(*i2max)) return true;
    if (lav_) {
      // Any witness I1' consists of facts f with Sol(I1) ⊆ Sol({f});
      // for LAV the maximal candidate S* is itself the union of all
      // witnesses, so one exists iff Sol(S*) = Sol(I1).
      Instance star(m_.source);
      for (const Fact& fact : i2max->Facts()) {
        Instance single(m_.source);
        QIMAP_RETURN_IF_ERROR(single.AddFact(fact.relation, fact.tuple));
        if (IsSolution(m_, single, chases_[a])) {
          QIMAP_RETURN_IF_ERROR(star.AddFact(fact.relation, fact.tuple));
        }
      }
      return SimEquivalent(m_, star, instances_[a]);
    }
    // Non-LAV with eq2 == equality: fall through to the bounded scan of
    // I1's class below, against the fixed I2.
  }
  // Bounded scan over enumerated class members.
  std::vector<size_t> singleton_a = {a};
  std::vector<size_t> singleton_b = {b};
  const std::vector<size_t>& left = eq1 == EquivKind::kEquality
                                        ? singleton_a
                                        : class_members_[class_id_[a]];
  const std::vector<size_t>& right = eq2 == EquivKind::kEquality
                                         ? singleton_b
                                         : class_members_[class_id_[b]];
  for (size_t i1p : left) {
    for (size_t i2p : right) {
      if (instances_[i1p].IsSubsetOf(instances_[i2p])) return true;
    }
  }
  return false;
}

Result<bool> FrameworkChecker::Statement2(const ReverseMapping& m_prime,
                                          size_t a, size_t b,
                                          EquivKind eq1, EquivKind eq2,
                                          BoundedCheckReport* report) {
  (void)eq1;  // membership is ~M-invariant in the first component
  if (eq2 == EquivKind::kEquality) {
    ++report->composition_calls;
    return InComposition(m_, m_prime, instances_[a], instances_[b]);
  }
  if (lav_) {
    // Membership is monotone in the second component, so the class
    // maximum decides it.
    QIMAP_ASSIGN_OR_RETURN(const Instance* umax, SaturatedOf(b));
    ++report->composition_calls;
    return InComposition(m_, m_prime, instances_[a], *umax);
  }
  for (size_t i2pp : class_members_[class_id_[b]]) {
    ++report->composition_calls;
    QIMAP_ASSIGN_OR_RETURN(
        bool member,
        InComposition(m_, m_prime, instances_[a], instances_[i2pp]));
    if (member) return true;
  }
  return false;
}

Result<BoundedCheckReport> FrameworkChecker::CheckSubsetProperty(
    EquivKind eq1, EquivKind eq2) {
  QIMAP_RETURN_IF_ERROR(Prepare());
  BoundedCheckReport report;
  report.space_size = instances_.size();
  report.sim_classes = num_classes_;
  // Statement 1 only depends on the ~M classes of the components the
  // relaxed relation applies to; memoize accordingly.
  std::map<std::pair<size_t, size_t>, bool> memo;
  for (size_t a : main_indices_) {
    for (size_t b : main_indices_) {
      ++report.pairs_checked;
      // Sol(M, I2) ⊆ Sol(M, I1) iff chase(I2) is a solution for I1.
      if (!IsSolution(m_, instances_[a], chases_[b])) continue;
      auto key = std::make_pair(
          eq1 == EquivKind::kSimM ? class_id_[a] : a + instances_.size(),
          eq2 == EquivKind::kSimM ? class_id_[b] : b + instances_.size());
      bool witnessed;
      auto it = memo.find(key);
      if (it != memo.end()) {
        witnessed = it->second;
      } else {
        QIMAP_ASSIGN_OR_RETURN(witnessed, Statement1(a, b, eq1, eq2));
        memo.emplace(key, witnessed);
      }
      if (!witnessed) {
        report.holds = false;
        report.counterexample = Counterexample{
            instances_[a], instances_[b],
            std::string("Sol(I2) ⊆ Sol(I1) but no (I1',I2') with ") +
                "I1' " + EquivKindName(eq1) + " I1, I2' " +
                EquivKindName(eq2) + " I2, I1' ⊆ I2' found"};
        return report;
      }
    }
  }
  return report;
}

Result<BoundedCheckReport> FrameworkChecker::CheckGeneralizedInverse(
    const ReverseMapping& m_prime, EquivKind eq1, EquivKind eq2) {
  QIMAP_RETURN_IF_ERROR(Prepare());
  BoundedCheckReport report;
  report.space_size = instances_.size();
  report.sim_classes = num_classes_;

  std::map<std::pair<size_t, size_t>, bool> memo1;
  std::map<std::pair<size_t, size_t>, bool> memo2;
  for (size_t a : main_indices_) {
    for (size_t b : main_indices_) {
      ++report.pairs_checked;
      auto key = std::make_pair(
          eq1 == EquivKind::kSimM ? class_id_[a] : a + instances_.size(),
          eq2 == EquivKind::kSimM ? class_id_[b] : b + instances_.size());
      bool s1;
      auto it1 = memo1.find(key);
      if (it1 != memo1.end()) {
        s1 = it1->second;
      } else {
        QIMAP_ASSIGN_OR_RETURN(s1, Statement1(a, b, eq1, eq2));
        memo1.emplace(key, s1);
      }
      // Statement 2 is ~M-invariant in the first component regardless of
      // eq1, so its memo key may always use the class there.
      auto key2 = std::make_pair(
          class_id_[a],
          eq2 == EquivKind::kSimM ? class_id_[b] : b + instances_.size());
      bool s2;
      auto it2 = memo2.find(key2);
      if (it2 != memo2.end()) {
        s2 = it2->second;
      } else {
        QIMAP_ASSIGN_OR_RETURN(
            s2, Statement2(m_prime, a, b, eq1, eq2, &report));
        memo2.emplace(key2, s2);
      }
      if (s1 != s2) {
        report.holds = false;
        report.counterexample = Counterexample{
            instances_[a], instances_[b],
            s1 ? "I1 ⊆ I2 modulo (~1,~2) but the pair is not in "
                 "Inst(M∘M') modulo (~1,~2)"
               : "the pair is in Inst(M∘M') modulo (~1,~2) but I1 ⊆ I2 "
                 "fails modulo (~1,~2)"};
        return report;
      }
    }
  }
  return report;
}

Result<BoundedCheckReport> FrameworkChecker::CheckUniqueSolutions() {
  QIMAP_RETURN_IF_ERROR(Prepare());
  BoundedCheckReport report;
  report.space_size = instances_.size();
  report.sim_classes = num_classes_;
  for (size_t ai = 0; ai < main_indices_.size(); ++ai) {
    for (size_t bi = ai + 1; bi < main_indices_.size(); ++bi) {
      size_t a = main_indices_[ai];
      size_t b = main_indices_[bi];
      ++report.pairs_checked;
      if (class_id_[a] == class_id_[b] &&
          !(instances_[a] == instances_[b])) {
        report.holds = false;
        report.counterexample = Counterexample{
            instances_[a], instances_[b],
            "distinct ground instances with the same space of solutions"};
        return report;
      }
    }
  }
  return report;
}

}  // namespace qimap
