#include "core/inverse.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "base/budget.h"
#include "chase/chase.h"
#include "core/sigma_star.h"
#include "obs/budget_obs.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace qimap {
namespace {

// The all-distinct prime atom R(x1, ..., xm).
Atom DistinctPrimeAtom(const Schema& schema, RelationId r) {
  Atom atom;
  atom.relation = r;
  uint32_t arity = schema.relation(r).arity;
  for (uint32_t i = 0; i < arity; ++i) {
    atom.args.push_back(Value::MakeVariable("x" + std::to_string(i + 1)));
  }
  return atom;
}

}  // namespace

Result<bool> HasConstantPropagation(const SchemaMapping& m,
                                    Budget* budget) {
  ChaseOptions chase_options;
  chase_options.budget = budget;
  for (RelationId r = 0; r < m.source->size(); ++r) {
    Atom atom = DistinctPrimeAtom(*m.source, r);
    Instance canonical = CanonicalInstance({atom}, m.source);
    QIMAP_ASSIGN_OR_RETURN(Instance chased,
                           Chase(canonical, m, chase_options));
    std::set<Value> domain;
    for (const Value& v : chased.ActiveDomain()) domain.insert(v);
    for (const Value& v : atom.args) {
      if (domain.count(v) == 0) return false;
    }
  }
  return true;
}

std::vector<Atom> PrimeAtoms(const Schema& schema, RelationId r) {
  std::vector<Atom> out;
  uint32_t arity = schema.relation(r).arity;
  for (const std::vector<size_t>& pattern : SetPartitions(arity)) {
    Atom atom;
    atom.relation = r;
    for (size_t block : pattern) {
      atom.args.push_back(
          Value::MakeVariable("x" + std::to_string(block + 1)));
    }
    out.push_back(std::move(atom));
  }
  return out;
}

Result<ReverseMapping> InverseAlgorithm(const SchemaMapping& m,
                                        const InverseOptions& options) {
  static const obs::MetricId kLatency =
      obs::RegisterHistogram("inv.latency_us");
  static const obs::MetricId kRuns = obs::RegisterCounter("inv.runs");
  static const obs::MetricId kPrimes =
      obs::RegisterCounter("inv.prime_instances");
  static const obs::MetricId kRules =
      obs::RegisterCounter("inv.rules_emitted");
  obs::ScopedLatency latency(kLatency);
  QIMAP_TRACE_SPAN("inverse/run");
  obs::JournalRun journal("inverse");
  obs::CounterAdd(kRuns);

  ReverseMapping reverse;
  reverse.from = m.target;
  reverse.to = m.source;

  RunBudget guard("Inverse", 0, options.budget);
  // Ends the inversion on a budget trip: journal + budget.* metrics, then
  // the dependencies derived so far as the best-effort partial result.
  auto trip = [&](Status status) -> Status {
    obs::ReportBudgetTrip(journal, guard, status,
                          options.partial_out != nullptr);
    reverse.partial = true;
    if (options.partial_out != nullptr) {
      *options.partial_out = std::move(reverse);
    }
    return status;
  };
  // The inner chases journal and report their own trips; `trip` then
  // hands the caller the rules derived before the budget ran out.
  auto chase_overflow = [&guard](const Status& status) {
    return guard.exhausted() ||
           status.code() == StatusCode::kResourceExhausted ||
           status.code() == StatusCode::kCancelled;
  };

  // Step 1: the constant-propagation property is necessary for
  // invertibility (Proposition 5.3); without it the algorithm's
  // dependencies would be ill-formed (rhs variables missing from the lhs).
  Result<bool> propagates = HasConstantPropagation(m, options.budget);
  if (!propagates.ok()) {
    Status status = propagates.status();
    if (chase_overflow(status)) return trip(std::move(status));
    return status;
  }
  if (!*propagates) {
    return Status::FailedPrecondition(
        "mapping lacks the constant-propagation property; it has no "
        "inverse (Proposition 5.3)");
  }

  ChaseOptions chase_options;
  chase_options.budget = options.budget;

  // Heartbeats: one step per prime instance inverted; the inner chases
  // emit their own runs.
  obs::ProgressRun progress(
      "inverse",
      [&reverse]() {
        obs::ProgressSample sample;
        sample.fired = reverse.deps.size();
        return sample;
      },
      options.budget);

  // Steps 2-4: one full tgd per prime instance.
  for (RelationId r = 0; r < m.source->size(); ++r) {
    for (const Atom& alpha : PrimeAtoms(*m.source, r)) {
      // Profiling: one entry per prime instance; the chase of its
      // canonical instance attributes its own dependencies on top.
      uint32_t prof_dep = obs::kProfileNoDep;
      if (obs::Profiler::Enabled()) {
        prof_dep = obs::Profiler::RegisterDep(
            "inverse", AtomToString(alpha, *m.source), 1);
      }
      obs::ProfiledDepScope prof_scope(prof_dep,
                                       obs::ProfilePhase::kFire);
      {
        Status tick = guard.Tick();
        if (!tick.ok()) return trip(std::move(tick));
      }
      progress.Step();
      obs::CounterAdd(kPrimes);
      Instance canonical = CanonicalInstance({alpha}, m.source);
      Result<Instance> prime_chase = Chase(canonical, m, chase_options);
      if (!prime_chase.ok()) {
        Status status = prime_chase.status();
        if (chase_overflow(status)) return trip(std::move(status));
        return status;
      }
      Instance chased = std::move(prime_chase).value();

      // psi_alpha: the chase facts, with each null renamed to a fresh
      // variable y1, y2, ... (deterministic: sorted-fact order).
      std::map<Value, Value> null_to_var;
      DisjunctiveTgd dep;
      for (const Fact& fact : chased.Facts()) {
        Atom atom;
        atom.relation = fact.relation;
        for (const Value& v : fact.tuple) {
          if (v.IsNull()) {
            auto it = null_to_var.find(v);
            if (it == null_to_var.end()) {
              it = null_to_var
                       .emplace(v, Value::MakeVariable(
                                       "y" + std::to_string(
                                                 null_to_var.size() + 1)))
                       .first;
            }
            atom.args.push_back(it->second);
          } else {
            atom.args.push_back(v);
          }
        }
        dep.lhs.push_back(std::move(atom));
      }

      // Distinct variables of alpha, in order.
      std::vector<Value> distinct;
      for (const Value& v : alpha.args) {
        if (std::find(distinct.begin(), distinct.end(), v) ==
            distinct.end()) {
          distinct.push_back(v);
        }
      }
      if (options.include_constant_predicates) {
        dep.constant_vars = distinct;
      }
      for (size_t i = 0; i < distinct.size(); ++i) {
        for (size_t j = i + 1; j < distinct.size(); ++j) {
          dep.inequalities.emplace_back(distinct[i], distinct[j]);
        }
      }
      dep.disjuncts.push_back(Conjunction{alpha});
      if (journal.active()) {
        // Attribute the rule to the prime instance whose chase built its
        // lhs (the Section 5 construction, Theorem 5.4).
        std::string alpha_text = AtomToString(alpha, *m.source);
        uint64_t prime_id = journal.RecordBaseFact(alpha_text);
        journal.RecordRule(DisjunctiveTgdToString(dep, *m.target, *m.source),
                           alpha_text,
                           static_cast<int32_t>(reverse.deps.size()),
                           ConjunctionToString(dep.lhs, *m.target),
                           {prime_id});
      }
      reverse.deps.push_back(std::move(dep));
      obs::CounterAdd(kRules);
      obs::ProfileRecordOutcomes(prof_dep, 1, 1, 0);
    }
  }
  return reverse;
}

ReverseMapping MustInverseAlgorithm(const SchemaMapping& m,
                                    const InverseOptions& options) {
  Result<ReverseMapping> reverse = InverseAlgorithm(m, options);
  if (!reverse.ok()) {
    std::fprintf(stderr, "MustInverseAlgorithm: %s\n",
                 reverse.status().ToString().c_str());
    std::abort();
  }
  return std::move(reverse).value();
}

}  // namespace qimap
