#ifndef QIMAP_CORE_FRAMEWORK_H_
#define QIMAP_CORE_FRAMEWORK_H_

#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/composition.h"
#include "dependency/schema_mapping.h"
#include "relational/instance.h"

namespace qimap {

/// Selects an equivalence relation on ground instances for the unifying
/// framework of Section 3. `kEquality` is `=` (inverses); `kSimM` is `~M`
/// (quasi-inverses). Both are refinements of `~M`, as the framework
/// requires.
enum class EquivKind {
  kEquality,
  kSimM,
};

const char* EquivKindName(EquivKind kind);

/// The space of ground instances swept by the verifiers.
///
/// The verifiers quantify over all pairs of instances with at most
/// `max_facts` facts over `domain`. The existential witness searches of
/// Definitions 3.3 and 3.4 are resolved as follows:
///
///  * components under `=` need no witness search (exact);
///  * for LAV mappings, `~M`-constraints are per-fact, so every class
///    restricted to the domain is union-closed and has a maximum element
///    `Umax(I) = { f : Sol(I) ⊆ Sol({f}) }`; witness searches reduce to
///    exact tests against it, with no size bound at all;
///  * for non-LAV mappings, witnesses are enumerated over the same domain
///    with up to `witness_max_facts` facts (a bounded search).
///
/// In the LAV case the only approximation left is the finite domain;
/// keeping a spare constant beyond what the instances use makes
/// renamed-apart witnesses expressible.
struct BoundedSpace {
  std::vector<Value> domain;
  size_t max_facts = 2;
  /// Bound for enumerated witnesses (non-LAV mappings only).
  /// 0 means `2 * max_facts` (the canonical witnesses in the paper's
  /// proofs have the form `I1 ∪ I2`).
  size_t witness_max_facts = 0;
};

/// A pair of ground instances witnessing a failed check.
struct Counterexample {
  Instance i1;
  Instance i2;
  std::string detail;
};

/// Outcome of a bounded check. `holds == true` means the property was
/// verified for every instance pair in the space (witness searches exact
/// for LAV mappings and `=` components; bounded otherwise — see
/// BoundedSpace).
struct BoundedCheckReport {
  bool holds = true;
  std::optional<Counterexample> counterexample;
  size_t pairs_checked = 0;
  size_t composition_calls = 0;
  size_t space_size = 0;
  size_t sim_classes = 0;
};

/// Verifier for the Section 3 framework: precomputes the instance space,
/// all chases, and the `~M` classes once, then answers subset-property,
/// generalized-inverse, and unique-solutions queries.
class FrameworkChecker {
 public:
  /// The mapping must outlive the checker.
  FrameworkChecker(const SchemaMapping& m, BoundedSpace space);

  /// Decides the `(~1, ~2)`-subset property (Definition 3.4) over the
  /// space: for every pair with `Sol(M, I2) ⊆ Sol(M, I1)` there must be
  /// `(I1', I2') ~(1,2) (I1, I2)` with `I1' ⊆ I2'`.
  Result<BoundedCheckReport> CheckSubsetProperty(EquivKind eq1,
                                                 EquivKind eq2);

  /// Decides whether `m_prime` is a `(~1, ~2)`-inverse of the mapping
  /// (Definition 3.3) over the space. With `(kEquality, kEquality)` this
  /// is the inverse check; with `(kSimM, kSimM)` the quasi-inverse check
  /// (Definition 3.8).
  ///
  /// Statement 2 of Definition 3.3 exploits that `Inst(M ∘ M')` is
  /// invariant under `~M` in its first component (as in the proof of
  /// Theorem 3.5) and monotone in its second.
  Result<BoundedCheckReport> CheckGeneralizedInverse(
      const ReverseMapping& m_prime, EquivKind eq1, EquivKind eq2);

  /// Decides the unique-solutions property over the space: distinct
  /// ground instances must have distinct solution spaces (necessary for
  /// invertibility; Section 1 and Corollary 3.6).
  Result<BoundedCheckReport> CheckUniqueSolutions();

  /// The enumerated witness-space instances (populated after the first
  /// check runs); the checked pairs are the members with at most
  /// `max_facts` facts.
  const std::vector<Instance>& Instances() const { return instances_; }

  /// Number of `~M` classes in the witness space.
  size_t NumSimClasses() const { return num_classes_; }

  /// The maximum element of the `~M`-class of `inst` over the domain:
  /// the union of every domain fact `f` with `Sol(inst) ⊆ Sol({f})`.
  /// Only meaningful for LAV mappings (classes of join mappings are not
  /// union-closed). Exposed for tests and benchmarks.
  Result<Instance> SaturateClass(const Instance& inst);

 private:
  Status Prepare();

  // Statement 1 of Definition 3.3 for the pair (instances_[a],
  // instances_[b]): exists (I1', I2') ~(1,2) (I1, I2) with I1' ⊆ I2'.
  Result<bool> Statement1(size_t a, size_t b, EquivKind eq1, EquivKind eq2);

  // Statement 2 of Definition 3.3: exists (I1'', I2'') ~(1,2) (I1, I2)
  // in Inst(M ∘ M'). Counts composition-oracle calls into `report`.
  Result<bool> Statement2(const ReverseMapping& m_prime, size_t a, size_t b,
                          EquivKind eq1, EquivKind eq2,
                          BoundedCheckReport* report);

  // The saturated maximum of instances_[index]'s class, memoized per
  // class (LAV path only).
  Result<const Instance*> SaturatedOf(size_t index);

  const SchemaMapping& m_;
  BoundedSpace space_;
  bool prepared_ = false;
  bool lav_ = false;

  std::vector<Instance> instances_;   // the witness space
  std::vector<Instance> chases_;
  std::vector<Fact> domain_facts_;    // full fact space of the domain
  std::vector<size_t> main_indices_;  // instances with <= max_facts
  std::vector<size_t> class_id_;
  std::vector<std::vector<size_t>> class_members_;
  size_t num_classes_ = 0;
  std::vector<std::optional<Instance>> saturated_;  // per class
};

}  // namespace qimap

#endif  // QIMAP_CORE_FRAMEWORK_H_
