#ifndef QIMAP_CORE_IMPLICATION_H_
#define QIMAP_CORE_IMPLICATION_H_

#include "base/status.h"
#include "chase/disjunctive_chase.h"
#include "dependency/schema_mapping.h"

namespace qimap {

/// Decides `Sigma |= sigma` for s-t tgds: chase the canonical instance of
/// sigma's lhs (variables frozen) with Sigma and test whether sigma's rhs
/// embeds with the lhs variables fixed — the standard chase-based
/// implication test (used implicitly by Definition 4.2's generators).
Result<bool> ImpliesTgd(const SchemaMapping& m, const Tgd& sigma);

/// `Sigma_a |= Sigma_b` and `Sigma_b |= Sigma_a`: logical equivalence of
/// two s-t dependency sets over the same schemas (e.g. Sigma and Sigma*).
Result<bool> EquivalentTgdSets(const SchemaMapping& a,
                               const SchemaMapping& b);

/// Options for disjunctive-dependency implication.
struct ImplicationOptions {
  DisjunctiveChaseOptions chase;
  /// Guard on the shape case analysis (partitions x constant/null kinds).
  size_t max_shapes = 1u << 16;
};

/// Decides whether a set of target-to-source disjunctive tgds with
/// constants and inequalities logically implies another such dependency
/// over the same schemas.
///
/// The lhs variables of the conclusion range over constants and nulls and
/// may coincide, so the test performs a complete case analysis over the
/// consistent "shapes" (a set partition of the lhs variables plus a
/// constant/null kind per block, honoring the Constant and inequality
/// guards). For each shape, the instantiated lhs is chased with the
/// premise set's disjunctive chase; the conclusion holds iff in every
/// leaf some disjunct embeds under the canonical match. Soundness and
/// completeness follow from the universality of the disjunctive chase
/// (the paper's Proposition 6.6 argument with the lhs values frozen).
Result<bool> ImpliesDisjunctive(const ReverseMapping& premises,
                                const DisjunctiveTgd& conclusion,
                                const ImplicationOptions& options = {});

/// `premises |= conclusions` member-wise.
Result<bool> ImpliesReverseMapping(const ReverseMapping& premises,
                                   const ReverseMapping& conclusions,
                                   const ImplicationOptions& options = {});

/// Logical equivalence of two reverse mappings.
Result<bool> EquivalentReverseMappings(const ReverseMapping& a,
                                       const ReverseMapping& b,
                                       const ImplicationOptions& options = {});

}  // namespace qimap

#endif  // QIMAP_CORE_IMPLICATION_H_
