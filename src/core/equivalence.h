#ifndef QIMAP_CORE_EQUIVALENCE_H_
#define QIMAP_CORE_EQUIVALENCE_H_

#include <memory>
#include <string>

#include "base/status.h"
#include "core/solution_space.h"
#include "dependency/schema_mapping.h"
#include "relational/instance.h"

namespace qimap {

/// An equivalence relation on ground instances, used to instantiate the
/// paper's unifying framework of `(~1, ~2)`-inverses (Section 3). Concrete
/// relations must be refinements of `~M` for the framework's theorems to
/// apply; this library ships equality (`=`) and the data-exchange
/// equivalence (`~M`) — the two endpoints of the spectrum — and users may
/// plug in their own refinements.
class GroundEquivalence {
 public:
  virtual ~GroundEquivalence() = default;

  /// Decides whether the two ground instances are equivalent.
  virtual Result<bool> Equivalent(const Instance& a,
                                  const Instance& b) const = 0;

  /// Human-readable name, e.g. "=" or "~M".
  virtual std::string Name() const = 0;
};

/// The equality relation `=` on ground instances; with `(=, =)` the
/// framework specializes to the notion of inverse from Fagin (PODS 2006).
class EqualityEquivalence : public GroundEquivalence {
 public:
  Result<bool> Equivalent(const Instance& a,
                          const Instance& b) const override {
    return a == b;
  }
  std::string Name() const override { return "="; }
};

/// The data-exchange equivalence `~M` (Definition 3.1); with `(~M, ~M)`
/// the framework specializes to quasi-inverses (Definition 3.8).
class SimEquivalence : public GroundEquivalence {
 public:
  /// The mapping must outlive this object.
  explicit SimEquivalence(const SchemaMapping& m) : m_(m) {}

  Result<bool> Equivalent(const Instance& a,
                          const Instance& b) const override {
    return SimEquivalent(m_, a, b);
  }
  std::string Name() const override { return "~M"; }

 private:
  const SchemaMapping& m_;
};

/// A strict refinement of `~M` strictly above `=`: equivalent iff `~M`
/// *and* the active domains coincide. Sits in the interior of the
/// Proposition 3.7 spectrum — every inverse is a `(~M∩dom, ~M∩dom)`-
/// inverse, and every such is a quasi-inverse.
class SimSameDomainEquivalence : public GroundEquivalence {
 public:
  /// The mapping must outlive this object.
  explicit SimSameDomainEquivalence(const SchemaMapping& m) : m_(m) {}

  Result<bool> Equivalent(const Instance& a,
                          const Instance& b) const override {
    if (a.ActiveDomain() != b.ActiveDomain()) return false;
    return SimEquivalent(m_, a, b);
  }
  std::string Name() const override { return "~M∩dom"; }

 private:
  const SchemaMapping& m_;
};

}  // namespace qimap

#endif  // QIMAP_CORE_EQUIVALENCE_H_
