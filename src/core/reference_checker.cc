#include "core/reference_checker.h"

#include "core/composition.h"
#include "core/solution_space.h"
#include "relational/instance_enum.h"

namespace qimap {

ReferenceChecker::ReferenceChecker(const SchemaMapping& m,
                                   BoundedSpace space)
    : m_(m), space_(std::move(space)) {
  if (space_.witness_max_facts == 0) {
    space_.witness_max_facts = 2 * space_.max_facts;
  }
}

Status ReferenceChecker::Prepare() {
  if (prepared_) return Status::OK();
  EnumerationSpace enum_space{
      m_.source, space_.domain,
      std::max(space_.max_facts, space_.witness_max_facts)};
  ForEachInstance(enum_space, [&](const Instance& inst) {
    instances_.push_back(inst);
    return true;
  });
  for (size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].NumFacts() <= space_.max_facts) {
      main_indices_.push_back(i);
    }
  }
  prepared_ = true;
  return Status::OK();
}

Result<bool> ReferenceChecker::Equivalent(const GroundEquivalence& eq,
                                          size_t i, size_t j) {
  auto key = std::make_tuple(static_cast<const void*>(&eq),
                             std::min(i, j), std::max(i, j));
  auto it = equiv_cache_.find(key);
  if (it != equiv_cache_.end()) return it->second;
  QIMAP_ASSIGN_OR_RETURN(bool equivalent,
                         eq.Equivalent(instances_[i], instances_[j]));
  equiv_cache_.emplace(key, equivalent);
  return equivalent;
}

Result<bool> ReferenceChecker::Statement1(size_t a, size_t b,
                                          const GroundEquivalence& e1,
                                          const GroundEquivalence& e2) {
  for (size_t i1p = 0; i1p < instances_.size(); ++i1p) {
    QIMAP_ASSIGN_OR_RETURN(bool left, Equivalent(e1, a, i1p));
    if (!left) continue;
    for (size_t i2p = 0; i2p < instances_.size(); ++i2p) {
      if (!instances_[i1p].IsSubsetOf(instances_[i2p])) continue;
      QIMAP_ASSIGN_OR_RETURN(bool right, Equivalent(e2, b, i2p));
      if (right) return true;
    }
  }
  return false;
}

Result<BoundedCheckReport> ReferenceChecker::CheckSubsetProperty(
    const GroundEquivalence& e1, const GroundEquivalence& e2) {
  QIMAP_RETURN_IF_ERROR(Prepare());
  BoundedCheckReport report;
  report.space_size = instances_.size();
  for (size_t a : main_indices_) {
    for (size_t b : main_indices_) {
      ++report.pairs_checked;
      QIMAP_ASSIGN_OR_RETURN(bool contained,
                             SolutionsContained(m_, instances_[b],
                                                instances_[a]));
      if (!contained) continue;
      QIMAP_ASSIGN_OR_RETURN(bool witnessed, Statement1(a, b, e1, e2));
      if (!witnessed) {
        report.holds = false;
        report.counterexample =
            Counterexample{instances_[a], instances_[b],
                           "subset property fails (reference checker)"};
        return report;
      }
    }
  }
  return report;
}

Result<BoundedCheckReport> ReferenceChecker::CheckGeneralizedInverse(
    const ReverseMapping& m_prime, const GroundEquivalence& e1,
    const GroundEquivalence& e2) {
  QIMAP_RETURN_IF_ERROR(Prepare());
  BoundedCheckReport report;
  report.space_size = instances_.size();
  for (size_t a : main_indices_) {
    for (size_t b : main_indices_) {
      ++report.pairs_checked;
      QIMAP_ASSIGN_OR_RETURN(bool s1, Statement1(a, b, e1, e2));
      // Statement 2, scanning both components literally per Definition
      // 3.3 (no invariance shortcuts in the reference implementation).
      bool s2 = false;
      for (size_t i1pp = 0; i1pp < instances_.size() && !s2; ++i1pp) {
        QIMAP_ASSIGN_OR_RETURN(bool left, Equivalent(e1, a, i1pp));
        if (!left) continue;
        for (size_t i2pp = 0; i2pp < instances_.size(); ++i2pp) {
          QIMAP_ASSIGN_OR_RETURN(bool right, Equivalent(e2, b, i2pp));
          if (!right) continue;
          ++report.composition_calls;
          QIMAP_ASSIGN_OR_RETURN(
              bool member, InComposition(m_, m_prime, instances_[i1pp],
                                         instances_[i2pp]));
          if (member) {
            s2 = true;
            break;
          }
        }
      }
      if (s1 != s2) {
        report.holds = false;
        report.counterexample = Counterexample{
            instances_[a], instances_[b],
            "Definition 3.3 fails (reference checker)"};
        return report;
      }
    }
  }
  return report;
}

}  // namespace qimap
