#ifndef QIMAP_CORE_SIGMA_STAR_H_
#define QIMAP_CORE_SIGMA_STAR_H_

#include <cstddef>
#include <vector>

#include "dependency/schema_mapping.h"

namespace qimap {

/// All set partitions of `{0, ..., n-1}`, each encoded as a restricted
/// growth string: `out[k][i]` is the block index of item `i`, with block
/// indices appearing in first-use order. `SetPartitions(0)` is the single
/// empty partition.
std::vector<std::vector<size_t>> SetPartitions(size_t n);

/// The paper's `Sigma*` (Section 4): for each tgd `sigma` of the mapping
/// and each complete description `delta` (a consistent specification of
/// equalities/inequalities, i.e. a set partition) of the variables that
/// appear on both sides of `sigma`, the formula `f(sigma, delta)` replaces
/// every such variable by the representative of its block. Returns
/// `Sigma ∪ { f(sigma, delta) }`, deduplicated, and logically equivalent
/// to `Sigma`.
std::vector<Tgd> SigmaStar(const SchemaMapping& m);

}  // namespace qimap

#endif  // QIMAP_CORE_SIGMA_STAR_H_
