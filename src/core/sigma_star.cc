#include "core/sigma_star.h"

#include <algorithm>

#include "relational/atom.h"

namespace qimap {

std::vector<std::vector<size_t>> SetPartitions(size_t n) {
  std::vector<std::vector<size_t>> out;
  std::vector<size_t> rgs(n, 0);
  // Enumerate restricted growth strings: rgs[0] = 0 and
  // rgs[i] <= max(rgs[0..i-1]) + 1.
  if (n == 0) {
    out.push_back({});
    return out;
  }
  while (true) {
    out.push_back(rgs);
    // Advance to the next restricted growth string.
    size_t i = n;
    while (i-- > 1) {
      size_t max_prefix = 0;
      for (size_t j = 0; j < i; ++j) max_prefix = std::max(max_prefix, rgs[j]);
      if (rgs[i] <= max_prefix) {
        ++rgs[i];
        for (size_t j = i + 1; j < n; ++j) rgs[j] = 0;
        break;
      }
      if (i == 1) return out;
    }
    if (n == 1) return out;
  }
}

std::vector<Tgd> SigmaStar(const SchemaMapping& m) {
  std::vector<Tgd> out;
  auto add_unique = [&](Tgd tgd) {
    if (std::find(out.begin(), out.end(), tgd) == out.end()) {
      out.push_back(std::move(tgd));
    }
  };
  for (const Tgd& tgd : m.tgds) {
    add_unique(tgd);
    std::vector<Value> frontier = tgd.FrontierVariables();
    for (const std::vector<size_t>& partition :
         SetPartitions(frontier.size())) {
      // Representative of each block: the first frontier variable with
      // that block index.
      std::vector<Value> representative(frontier.size());
      std::vector<bool> have(frontier.size(), false);
      for (size_t i = 0; i < frontier.size(); ++i) {
        size_t block = partition[i];
        if (!have[block]) {
          representative[block] = frontier[i];
          have[block] = true;
        }
      }
      std::vector<std::pair<Value, Value>> substitution;
      for (size_t i = 0; i < frontier.size(); ++i) {
        substitution.emplace_back(frontier[i], representative[partition[i]]);
      }
      Tgd collapsed;
      collapsed.lhs = SubstituteConjunction(tgd.lhs, substitution);
      collapsed.rhs = SubstituteConjunction(tgd.rhs, substitution);
      add_unique(std::move(collapsed));
    }
  }
  return out;
}

}  // namespace qimap
