#ifndef QIMAP_CORE_REFERENCE_CHECKER_H_
#define QIMAP_CORE_REFERENCE_CHECKER_H_

#include <map>
#include <tuple>
#include <vector>

#include "base/status.h"
#include "core/equivalence.h"
#include "core/framework.h"
#include "dependency/schema_mapping.h"

namespace qimap {

/// A small, readable reference implementation of the Definition 3.3 and
/// 3.4 checks for *arbitrary* plug-in equivalence relations (any
/// GroundEquivalence refining `~M`).
///
/// Unlike FrameworkChecker it does no class precomputation, no
/// saturation, and no memoization beyond caching the pairwise
/// equivalence queries: every witness search is a literal scan of the
/// bounded witness space. That makes it quadratically slower but
/// obviously faithful to the definitions, so it serves two purposes:
///
///  * differential testing of FrameworkChecker (they must agree wherever
///    both apply), and
///  * exploring the spectrum of Proposition 3.7 with custom refinements
///    of `~M` between `=` and `~M` (e.g. SimSameDomainEquivalence).
class ReferenceChecker {
 public:
  /// `witness_max_facts` of the space bounds the witness scans (0 means
  /// `2 * max_facts`). The mapping must outlive the checker.
  ReferenceChecker(const SchemaMapping& m, BoundedSpace space);

  /// Definition 3.4 over the bounded space.
  Result<BoundedCheckReport> CheckSubsetProperty(const GroundEquivalence& e1,
                                                 const GroundEquivalence& e2);

  /// Definition 3.3 over the bounded space.
  Result<BoundedCheckReport> CheckGeneralizedInverse(
      const ReverseMapping& m_prime, const GroundEquivalence& e1,
      const GroundEquivalence& e2);

 private:
  Status Prepare();

  // Statement 1: exists (I1', I2') in the witness space, componentwise
  // equivalent to (instances_[a], instances_[b]), with I1' ⊆ I2'.
  Result<bool> Statement1(size_t a, size_t b, const GroundEquivalence& e1,
                          const GroundEquivalence& e2);

  // Memoized equivalence query between two witness-space instances.
  Result<bool> Equivalent(const GroundEquivalence& eq, size_t i, size_t j);

  const SchemaMapping& m_;
  BoundedSpace space_;
  bool prepared_ = false;
  std::vector<Instance> instances_;
  std::vector<size_t> main_indices_;
  // Cache keyed by (relation address, i, j) with i <= j.
  std::map<std::tuple<const void*, size_t, size_t>, bool> equiv_cache_;
};

}  // namespace qimap

#endif  // QIMAP_CORE_REFERENCE_CHECKER_H_
