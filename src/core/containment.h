#ifndef QIMAP_CORE_CONTAINMENT_H_
#define QIMAP_CORE_CONTAINMENT_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/status.h"
#include "dependency/schema_mapping.h"
#include "relational/instance.h"

namespace qimap {

/// Mapping containment in the sense of Calì-Torlone: `M = (S, T, Sigma)`
/// is contained in `M' = (S, T, Sigma')` when `Sol(M, I) ⊆ Sol(M', I)`
/// for every source instance `I` — equivalently, when `Sigma |= Sigma'`.
/// For s-t tgds this is decided per conclusion dependency by the
/// classical chase test (the same reduction core/implication.h uses):
/// chase the frozen canonical instance of `sigma'`'s lhs with `Sigma` and
/// ask whether `sigma'`'s rhs embeds with the frozen lhs values fixed.
/// s-t dependency sets are weakly acyclic by construction (source and
/// target positions are disjoint, so no cycle can exist at all), which is
/// what guarantees the inner chases terminate.
///
/// A negative verdict is constructive: the frozen canonical instance of
/// the first violated dependency is a concrete ground source instance
/// witnessing `Sol(M, I) ⊄ Sol(M', I)` (its `Sigma`-chase is a solution
/// under `M` but not under `M'`), and the report carries both.

/// One conclusion dependency's verdict.
struct ContainmentVerdict {
  size_t index = 0;  ///< position in the superset mapping's tgd list
  bool implied = false;
  /// True when the dependency was decided by the syntactic fast path
  /// (textually a member of Sigma) without chasing.
  bool syntactic = false;
  std::string dependency;  ///< the conclusion tgd as written
};

/// The full containment report.
struct ContainmentReport {
  /// `Sol(M, I) ⊆ Sol(M', I)` for all `I`.
  bool holds = false;
  std::vector<ContainmentVerdict> verdicts;
  size_t tgds_checked = 0;
  size_t chases = 0;          ///< canonical-instance chases performed
  size_t syntactic_hits = 0;  ///< verdicts that needed no chase
  /// The violated conclusion dependency (empty when the containment
  /// holds).
  std::string witness;
  /// Ground counterexample: the frozen canonical instance of the first
  /// violated dependency's lhs, and its chase under the sub-mapping.
  std::optional<Instance> counterexample;
  std::optional<Instance> counterexample_chase;
  /// True when a budget limit ended the check early and `verdicts` covers
  /// only a prefix of the conclusion dependencies.
  bool partial = false;

  /// One-line rendering for the CLI ("contained" / "NOT contained ...").
  std::string Summary() const;
};

struct ContainmentOptions {
  /// Shared resource governor; on exhaustion the check returns the budget
  /// status and delivers the verdicts so far through `partial_out`.
  Budget* budget = nullptr;
  /// Worker threads for the inner chases (0 = QIMAP_CHASE_THREADS).
  size_t num_threads = 1;
  /// Serve repeated canonical-instance chases from the fingerprint-keyed
  /// solution cache (chase/solution_cache.h). Governed runs bypass the
  /// cache either way.
  bool use_solution_cache = true;
  ContainmentReport* partial_out = nullptr;
};

/// Decides whether `sub` is contained in `super`. The two mappings must
/// share both schemas (FailedPrecondition otherwise).
Result<ContainmentReport> CheckContainment(
    const SchemaMapping& sub, const SchemaMapping& super,
    const ContainmentOptions& options = {});

/// Convenience: the boolean verdict alone.
Result<bool> MappingContained(const SchemaMapping& sub,
                              const SchemaMapping& super);

}  // namespace qimap

#endif  // QIMAP_CORE_CONTAINMENT_H_
