#ifndef QIMAP_CORE_INVERSE_H_
#define QIMAP_CORE_INVERSE_H_

#include <vector>

#include "base/status.h"
#include "dependency/schema_mapping.h"
#include "relational/atom.h"

namespace qimap {

class Budget;  // base/budget.h

/// Decides the constant-propagation property (Definition 5.2 /
/// Proposition 5.3): for every relation symbol `R` of the source schema,
/// the chase of `R(x1, ..., xm)` with `Sigma` must mention each of the `m`
/// distinct variables. A necessary condition for invertibility.
/// `budget`, when non-null, governs the inner chases.
Result<bool> HasConstantPropagation(const SchemaMapping& m,
                                    Budget* budget = nullptr);

/// The prime atoms of relation `r` in lexicographic order (Section 5):
/// atoms `R(xi1, ..., xim)` whose variable pattern is a restricted growth
/// string, e.g. `R(x1,x1), R(x1,x2)` for a binary `R`.
std::vector<Atom> PrimeAtoms(const Schema& schema, RelationId r);

/// Options for the Inverse algorithm.
struct InverseOptions {
  /// Emit the `Constant(x)` conjuncts. For mappings specified by full s-t
  /// tgds they are not needed (Section 5, discussion after Theorem 5.1).
  bool include_constant_predicates = true;
  /// Shared resource governor (see ChaseOptions::budget); also handed to
  /// the inner prime-instance chases, so one budget bounds the whole
  /// inversion.
  Budget* budget = nullptr;
  /// Best-effort partial result on a budget trip: the reverse mapping with
  /// the dependencies derived so far, flagged `partial`. See
  /// ChaseOptions::partial_out.
  ReverseMapping* partial_out = nullptr;
};

/// The paper's algorithm Inverse (Section 5, Theorem 5.1): produces a
/// reverse mapping specified by full tgds with constants and inequalities
/// (inequalities among constants) that is an inverse of `m` whenever `m`
/// is invertible — and the weakest one (any other inverse logically
/// implies it). For each prime instance `I_alpha` the emitted dependency is
///
///   chase_Sigma(I_alpha)[nulls renamed to y1,y2,...]
///     & Constant(x_i)... & x_i != x_j ...  ->  alpha
///
/// Returns FailedPrecondition when `m` lacks the constant-propagation
/// property (then `m` has no inverse and the algorithm has no output).
Result<ReverseMapping> InverseAlgorithm(const SchemaMapping& m,
                                        const InverseOptions& options = {});

/// Like InverseAlgorithm but aborts on error.
ReverseMapping MustInverseAlgorithm(const SchemaMapping& m,
                                    const InverseOptions& options = {});

}  // namespace qimap

#endif  // QIMAP_CORE_INVERSE_H_
