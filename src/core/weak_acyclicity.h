#ifndef QIMAP_CORE_WEAK_ACYCLICITY_H_
#define QIMAP_CORE_WEAK_ACYCLICITY_H_

#include <vector>

#include "dependency/tgd.h"
#include "relational/schema.h"

namespace qimap {

/// Decides weak acyclicity of a set of (target) tgds over `schema` — the
/// classical sufficient condition for chase termination with target
/// constraints (Fagin-Kolaitis-Miller-Popa, the paper's [4]).
///
/// The position graph has a node per (relation, argument position). For
/// each tgd and each lhs variable `x` at position `p` that also occurs in
/// the rhs: a regular edge from `p` to every rhs position of `x`, and a
/// special edge from `p` to every rhs position of every existential
/// variable. The set is weakly acyclic iff no cycle goes through a
/// special edge.
bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds, const Schema& schema);

}  // namespace qimap

#endif  // QIMAP_CORE_WEAK_ACYCLICITY_H_
