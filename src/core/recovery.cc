#include "core/recovery.h"

#include "core/composition.h"
#include "relational/instance_enum.h"

namespace qimap {

Result<BoundedCheckReport> CheckRecovery(const SchemaMapping& m,
                                         const ReverseMapping& m_prime,
                                         const BoundedSpace& space) {
  BoundedCheckReport report;
  EnumerationSpace enum_space{m.source, space.domain, space.max_facts};
  Status failure = Status::OK();
  ForEachInstance(enum_space, [&](const Instance& inst) {
    ++report.pairs_checked;
    ++report.composition_calls;
    Result<bool> member = InComposition(m, m_prime, inst, inst);
    if (!member.ok()) {
      failure = member.status();
      return false;
    }
    if (!*member) {
      report.holds = false;
      report.counterexample = Counterexample{
          inst, inst,
          "(I, I) is not in Inst(M ∘ M'): the round trip rules the "
          "original source out"};
      return false;
    }
    return true;
  });
  QIMAP_RETURN_IF_ERROR(failure);
  report.space_size = report.pairs_checked;
  return report;
}

Result<bool> AtLeastAsInformative(const SchemaMapping& m,
                                  const ReverseMapping& a,
                                  const ReverseMapping& b,
                                  const BoundedSpace& space) {
  EnumerationSpace enum_space{m.source, space.domain, space.max_facts};
  bool contained = true;
  Status failure = Status::OK();
  ForEachInstance(enum_space, [&](const Instance& i1) {
    ForEachInstance(enum_space, [&](const Instance& i2) {
      Result<bool> in_a = InComposition(m, a, i1, i2);
      if (!in_a.ok()) {
        failure = in_a.status();
        return false;
      }
      if (!*in_a) return true;
      Result<bool> in_b = InComposition(m, b, i1, i2);
      if (!in_b.ok()) {
        failure = in_b.status();
        return false;
      }
      if (!*in_b) {
        contained = false;
        return false;
      }
      return true;
    });
    return contained && failure.ok();
  });
  QIMAP_RETURN_IF_ERROR(failure);
  return contained;
}

}  // namespace qimap
