#ifndef QIMAP_CORE_COMPOSITION_H_
#define QIMAP_CORE_COMPOSITION_H_

#include "base/status.h"
#include "dependency/schema_mapping.h"
#include "relational/instance.h"

namespace qimap {

/// Options for the composition-membership oracle.
struct CompositionOptions {
  /// Guard on the number of candidate null-assignments enumerated
  /// (`|pool|^k` for `k` nulls in the universal solution).
  size_t max_assignments = 1u << 22;
};

/// Decides `(i1, i2) ∈ Inst(M ∘ M')` (paper, Section 2): is there a target
/// instance `J` with `(i1, J) |= Sigma` and `(J, i2) |= Sigma'`?
///
/// This is an *exact* decision procedure, not a bounded search. Candidate
/// witnesses can be restricted to homomorphic images of `chase(i1)`:
/// solutions for `i1` are exactly the supersets of such images, and the
/// satisfaction of `Sigma'` (whose lhs is over the target schema) is
/// preserved under shrinking `J` to the image. Values outside
/// `adom(i1) ∪ adom(i2)` can be renamed to fresh nulls without affecting
/// either side, so enumerating maps from the nulls of `chase(i1)` into
/// `adom(i1) ∪ adom(i2) ∪ {fresh nulls}` is complete.
Result<bool> InComposition(const SchemaMapping& m,
                           const ReverseMapping& m_prime,
                           const Instance& i1, const Instance& i2,
                           const CompositionOptions& options = {});

}  // namespace qimap

#endif  // QIMAP_CORE_COMPOSITION_H_
