#ifndef QIMAP_CORE_CERTAIN_ANSWERS_H_
#define QIMAP_CORE_CERTAIN_ANSWERS_H_

#include <string_view>
#include <vector>

#include "base/status.h"
#include "relational/atom.h"
#include "relational/instance.h"

namespace qimap {

/// A conjunctive query `q(head) :- body`, the query class whose certain
/// answers data exchange computes over universal solutions
/// (Fagin-Kolaitis-Miller-Popa, the paper's [4]) — and the yardstick for
/// what a faithful quasi-inverse recovery preserves (Section 6).
struct ConjunctiveQuery {
  std::vector<Value> head;
  Conjunction body;
};

/// Parses a query: `head_csv` like `"x, z"` and `body` like
/// `"Q(x,y) & R(y,z)"` (atoms resolved in `schema`; all arguments are
/// variables; head variables must occur in the body).
Result<ConjunctiveQuery> ParseQuery(const Schema& schema,
                                    std::string_view head_csv,
                                    std::string_view body);

/// Naive evaluation: all homomorphic matches of the body, projected to
/// the head. Over instances with nulls the answers may contain nulls.
std::vector<Tuple> EvaluateQuery(const ConjunctiveQuery& query,
                                 const Instance& instance);

/// Certain answers of the query over every solution represented by a
/// universal solution: naive evaluation keeping only the null-free
/// tuples. Homomorphically equivalent universal solutions have the same
/// certain answers, which is why faithful recoveries (Theorem 6.8)
/// preserve them.
std::vector<Tuple> CertainAnswers(const ConjunctiveQuery& query,
                                  const Instance& universal_solution);

}  // namespace qimap

#endif  // QIMAP_CORE_CERTAIN_ANSWERS_H_
