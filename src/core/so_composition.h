#ifndef QIMAP_CORE_SO_COMPOSITION_H_
#define QIMAP_CORE_SO_COMPOSITION_H_

#include "base/status.h"
#include "dependency/schema_mapping.h"
#include "dependency/so_tgd.h"
#include "relational/instance.h"

namespace qimap {

/// Skolemizes a schema mapping given by s-t tgds into an SO tgd: each
/// existential variable `y` of a dependency becomes the term
/// `f_<i>_<y>(x)` over the dependency's frontier variables. The result
/// specifies the same mapping (Fagin-Kolaitis-Popa-Tan [5]).
SoMapping Skolemize(const SchemaMapping& m);

/// Composes two consecutive schema mappings given by s-t tgds into a
/// single SO tgd — the general composition algorithm of the paper's [5],
/// with no fullness restriction (contrast ComposeFullFirst). Both
/// mappings are skolemized; every way of resolving each `m23`-lhs atom
/// against a rhs atom of skolemized `m12` yields one implication whose
/// lhs collects the chosen `m12` lhs copies plus the term equalities the
/// resolution forces (e.g. the famous `e = f(e)` self-manager equality).
///
/// `m23.source` must declare the same relations in the same order as
/// `m12.target`.
Result<SoMapping> ComposeSo(const SchemaMapping& m12,
                            const SchemaMapping& m23);

/// Options for the SO chase.
struct SoChaseOptions {
  /// Label of the first fresh Skolem null; 0 means "above the input's".
  uint32_t first_null_label = 0;
  size_t max_steps = 1u << 20;
};

/// Chases a source instance with an SO tgd under the free (term-algebra)
/// interpretation of the function symbols: each distinct ground Skolem
/// term denotes a distinct fresh labeled null. For SO tgds produced by
/// Skolemize or ComposeSo this yields a universal solution of the
/// specified mapping ([5]).
Result<Instance> SoChase(const Instance& source_inst, const SoMapping& m,
                         const SoChaseOptions& options = {});

}  // namespace qimap

#endif  // QIMAP_CORE_SO_COMPOSITION_H_
