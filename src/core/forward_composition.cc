#include "core/forward_composition.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "dependency/satisfaction.h"
#include "relational/homomorphism.h"

namespace qimap {
namespace {

// Union-find over variables for the unifier.
class VariableUnifier {
 public:
  Value Find(const Value& v) {
    auto it = parent_.find(v);
    if (it == parent_.end()) return v;
    Value root = Find(it->second);
    parent_[v] = root;
    return root;
  }

  void Union(const Value& a, const Value& b) {
    Value ra = Find(a);
    Value rb = Find(b);
    if (!(ra == rb)) parent_[ra] = rb;
  }

  // Representatives: prefer a variable satisfying `preferred` within each
  // class (so heads keep their original names).
  Assignment BuildSubstitution(const std::set<Value>& all_vars,
                               const std::set<Value>& preferred) {
    // Group by root.
    std::map<Value, std::vector<Value>> classes;
    for (const Value& v : all_vars) classes[Find(v)].push_back(v);
    Assignment substitution;
    for (auto& [root, members] : classes) {
      Value representative = root;
      for (const Value& v : members) {
        if (preferred.count(v) > 0) {
          representative = v;
          break;
        }
      }
      for (const Value& v : members) {
        substitution[v] = representative;
      }
    }
    return substitution;
  }

 private:
  std::map<Value, Value> parent_;
};

// Renames every variable of the tgd with an "@<slot>" suffix so copies
// chosen for different lhs slots never collide.
Tgd RenameApart(const Tgd& tgd, size_t slot) {
  std::vector<std::pair<Value, Value>> renaming;
  std::set<Value> vars = VariableSetOf(tgd.lhs);
  for (const Value& v : VariableSetOf(tgd.rhs)) vars.insert(v);
  for (const Value& v : vars) {
    renaming.emplace_back(
        v, Value::MakeVariable(v.ToString() + "@" + std::to_string(slot)));
  }
  Tgd out;
  out.lhs = SubstituteConjunction(tgd.lhs, renaming);
  out.rhs = SubstituteConjunction(tgd.rhs, renaming);
  return out;
}

// Renames the leftover renamed-apart copy variables (they contain '@',
// which the text DSL cannot express) to the first unused u1, u2, ...
void PrettifyCopyVariables(Tgd* tgd) {
  std::set<std::string> taken;
  for (const Conjunction* side : {&tgd->lhs, &tgd->rhs}) {
    for (const Atom& atom : *side) {
      for (const Value& v : atom.args) {
        if (v.IsVariable()) taken.insert(v.ToString());
      }
    }
  }
  std::map<Value, Value> rename;
  size_t next = 1;
  auto rename_value = [&](Value& v) {
    if (!v.IsVariable()) return;
    if (v.ToString().find('@') == std::string::npos) return;
    auto it = rename.find(v);
    if (it == rename.end()) {
      std::string fresh;
      do {
        fresh = "u" + std::to_string(next++);
      } while (taken.count(fresh) > 0);
      taken.insert(fresh);
      it = rename.emplace(v, Value::MakeVariable(fresh)).first;
    }
    v = it->second;
  };
  for (Conjunction* side : {&tgd->lhs, &tgd->rhs}) {
    for (Atom& atom : *side) {
      for (Value& v : atom.args) rename_value(v);
    }
  }
}

Conjunction ApplySubstitution(const Conjunction& conj,
                              const Assignment& substitution) {
  Conjunction out;
  out.reserve(conj.size());
  for (const Atom& atom : conj) {
    Atom mapped = atom;
    for (Value& v : mapped.args) v = Resolve(substitution, v);
    out.push_back(std::move(mapped));
  }
  return out;
}

}  // namespace

Result<bool> InForwardComposition(
    const SchemaMapping& m12, const SchemaMapping& m23, const Instance& i,
    const Instance& k, const ForwardCompositionOptions& options) {
  QIMAP_ASSIGN_OR_RETURN(Instance universal, Chase(i, m12));

  if (SatisfiesAll(universal, k, m23)) return true;

  std::vector<Value> nulls;
  for (const Value& v : universal.ActiveDomain()) {
    if (v.IsNull()) nulls.push_back(v);
  }
  if (nulls.empty()) return false;

  std::vector<Value> pool;
  {
    std::set<Value> seen;
    for (const Instance* inst : {&i, &k}) {
      for (const Value& v : inst->ActiveDomain()) {
        if (seen.insert(v).second) pool.push_back(v);
      }
    }
    uint32_t base =
        std::max(universal.MaxNullLabel(), k.MaxNullLabel()) + 1;
    for (size_t n = 0; n < nulls.size(); ++n) {
      pool.push_back(Value::MakeNull(base + static_cast<uint32_t>(n)));
    }
  }

  double estimate = 1.0;
  for (size_t n = 0; n < nulls.size(); ++n) {
    estimate *= static_cast<double>(pool.size());
    if (estimate > static_cast<double>(options.max_assignments)) {
      return Status::ResourceExhausted(
          "forward composition oracle: too many null assignments");
    }
  }

  std::vector<size_t> idx(nulls.size(), 0);
  while (true) {
    Assignment h;
    for (size_t n = 0; n < nulls.size(); ++n) {
      h.emplace(nulls[n], pool[idx[n]]);
    }
    Instance image = ApplyAssignmentToInstance(universal, h);
    if (SatisfiesAll(image, k, m23)) return true;
    size_t pos = 0;
    while (pos < idx.size()) {
      if (++idx[pos] < pool.size()) break;
      idx[pos] = 0;
      ++pos;
    }
    if (pos == idx.size()) break;
  }
  return false;
}

Result<SchemaMapping> ComposeFullFirst(const SchemaMapping& m12,
                                       const SchemaMapping& m23) {
  if (!m12.IsFull()) {
    return Status::FailedPrecondition(
        "ComposeFullFirst requires the first mapping to be full "
        "(arbitrary-first compositions may need second-order tgds)");
  }
  SchemaMapping composed;
  composed.source = m12.source;
  composed.target = m23.target;

  for (const Tgd& sigma23 : m23.tgds) {
    const size_t slots = sigma23.lhs.size();
    // Candidate (tgd, rhs-atom) resolutions per lhs slot.
    std::vector<std::vector<std::pair<size_t, size_t>>> candidates(slots);
    for (size_t s = 0; s < slots; ++s) {
      for (size_t t = 0; t < m12.tgds.size(); ++t) {
        for (size_t r = 0; r < m12.tgds[t].rhs.size(); ++r) {
          if (m12.tgds[t].rhs[r].relation == sigma23.lhs[s].relation) {
            candidates[s].emplace_back(t, r);
          }
        }
      }
      if (candidates[s].empty()) {
        // This sigma23 can never fire on a chase-minimal middle
        // instance; it contributes no composed dependency.
        candidates.clear();
        break;
      }
    }
    if (candidates.empty()) continue;

    // Odometer over the per-slot choices.
    std::vector<size_t> choice(slots, 0);
    while (true) {
      // Build renamed-apart copies and unify.
      VariableUnifier unifier;
      std::vector<Tgd> copies(slots);
      bool consistent = true;
      std::set<Value> all_vars;
      for (const Value& v : VariableSetOf(sigma23.lhs)) all_vars.insert(v);
      for (const Value& v : VariableSetOf(sigma23.rhs)) all_vars.insert(v);
      for (size_t s = 0; s < slots && consistent; ++s) {
        auto [t, r] = candidates[s][choice[s]];
        copies[s] = RenameApart(m12.tgds[t], s);
        for (const Value& v : VariableSetOf(copies[s].lhs)) {
          all_vars.insert(v);
        }
        const Atom& produced = copies[s].rhs[r];
        const Atom& consumed = sigma23.lhs[s];
        for (size_t p = 0; p < consumed.args.size(); ++p) {
          // Both sides are variables (dependencies carry no constants).
          unifier.Union(consumed.args[p], produced.args[p]);
        }
      }
      if (consistent) {
        std::set<Value> preferred;
        for (const Value& v : VariablesOf(sigma23.rhs)) preferred.insert(v);
        for (const Value& v : VariablesOf(sigma23.lhs)) preferred.insert(v);
        Assignment substitution =
            unifier.BuildSubstitution(all_vars, preferred);
        Tgd tgd;
        for (const Tgd& copy : copies) {
          Conjunction lhs = ApplySubstitution(copy.lhs, substitution);
          for (Atom& atom : lhs) {
            if (std::find(tgd.lhs.begin(), tgd.lhs.end(), atom) ==
                tgd.lhs.end()) {
              tgd.lhs.push_back(std::move(atom));
            }
          }
        }
        tgd.rhs = ApplySubstitution(sigma23.rhs, substitution);
        PrettifyCopyVariables(&tgd);
        if (std::find(composed.tgds.begin(), composed.tgds.end(), tgd) ==
            composed.tgds.end()) {
          composed.tgds.push_back(std::move(tgd));
        }
      }
      // Advance the odometer.
      size_t pos = 0;
      while (pos < slots) {
        if (++choice[pos] < candidates[pos].size()) break;
        choice[pos] = 0;
        ++pos;
      }
      if (pos == slots) break;
    }
  }
  return composed;
}

}  // namespace qimap
