#ifndef QIMAP_CORE_QUASI_INVERSE_H_
#define QIMAP_CORE_QUASI_INVERSE_H_

#include "base/status.h"
#include "core/mingen.h"
#include "dependency/schema_mapping.h"

namespace qimap {

class Budget;  // base/budget.h

/// Options for the QuasiInverse algorithm.
struct QuasiInverseOptions {
  MinGenOptions mingen;
  /// Emit the `Constant(x)` conjuncts. Theorem 4.6: for mappings specified
  /// by full s-t tgds they are unnecessary, so callers may disable them.
  bool include_constant_predicates = true;
  /// Drop disjuncts that are homomorphically subsumed by a more general
  /// disjunct (the paper's remark at the end of Example 4.5).
  bool prune_subsumed_disjuncts = true;
  /// Shared resource governor (see ChaseOptions::budget); also handed to
  /// the MinGen searches (and their inner chases) unless `mingen.budget`
  /// was set explicitly, so one budget bounds the whole inversion.
  Budget* budget = nullptr;
  /// Best-effort partial result on a budget trip: the reverse mapping with
  /// the dependencies derived so far, flagged `partial`. See
  /// ChaseOptions::partial_out.
  ReverseMapping* partial_out = nullptr;
};

/// True iff `general` subsumes `specific` as a disjunct with shared
/// variables `x`: there is a homomorphism from `general` into the atoms of
/// `specific` fixing `x` (then `specific` logically implies
/// `exists z general`, so `specific` may be dropped from a disjunction
/// containing `general`).
bool DisjunctSubsumes(const Conjunction& general,
                      const Conjunction& specific,
                      const std::vector<Value>& x, SchemaPtr schema);

/// Removes every conjunction that is homomorphically subsumed by a more
/// general member (ties keep the earlier one). Used on the disjuncts of a
/// QuasiInverse output dependency — and exposed because it also turns the
/// raw MinGen result into the paper's hand-pruned generator lists.
std::vector<Conjunction> PruneSubsumedConjunctions(
    const std::vector<Conjunction>& conjunctions,
    const std::vector<Value>& x, SchemaPtr schema);

/// The paper's algorithm QuasiInverse (Section 4, Theorem 4.1): computes a
/// reverse mapping specified by disjunctive tgds with constants and
/// inequalities (inequalities among constants only) that is a quasi-inverse
/// of `m` whenever `m` has one. Steps: build `Sigma*`; for each member
/// `phi(x,u) -> exists y psi(x,y)` emit
///
///   psi(x,y) & Constant(x_i)... & x_i != x_j ...
///       -> OR { exists z: beta(x,z) : beta in MinGen(m, psi, x) }
///
/// Fresh generator variables are renamed to `z1, z2, ...` for display.
Result<ReverseMapping> QuasiInverse(const SchemaMapping& m,
                                    const QuasiInverseOptions& options = {});

/// Like QuasiInverse but aborts on error.
ReverseMapping MustQuasiInverse(const SchemaMapping& m,
                                const QuasiInverseOptions& options = {});

}  // namespace qimap

#endif  // QIMAP_CORE_QUASI_INVERSE_H_
