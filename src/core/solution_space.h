#ifndef QIMAP_CORE_SOLUTION_SPACE_H_
#define QIMAP_CORE_SOLUTION_SPACE_H_

#include "base/status.h"
#include "chase/chase.h"
#include "dependency/schema_mapping.h"
#include "relational/instance.h"

namespace qimap {

/// True iff `target_inst` is a solution for `source_inst` under `m`, i.e.
/// `(source_inst, target_inst) |= Sigma` (paper, Section 2).
bool IsSolution(const SchemaMapping& m, const Instance& source_inst,
                const Instance& target_inst);

/// Decides `Sol(M, inner) ⊆ Sol(M, outer)`.
///
/// For s-t tgds the solution space is closed under target homomorphisms
/// that fix constants and under adding facts, and `chase(inner)` is
/// universal for `inner`; hence the containment holds iff `chase(inner)`
/// is a solution for `outer`. This turns a statement quantified over all
/// target instances into one chase plus one satisfaction check.
Result<bool> SolutionsContained(const SchemaMapping& m,
                                const Instance& inner,
                                const Instance& outer);

/// Decides the paper's data-exchange equivalence `I1 ~M I2`
/// (Definition 3.1): `Sol(M, I1) = Sol(M, I2)`.
Result<bool> SimEquivalent(const SchemaMapping& m, const Instance& i1,
                           const Instance& i2);

/// Like SimEquivalent but aborts on error (tests/benchmarks).
bool MustSimEquivalent(const SchemaMapping& m, const Instance& i1,
                       const Instance& i2);

}  // namespace qimap

#endif  // QIMAP_CORE_SOLUTION_SPACE_H_
