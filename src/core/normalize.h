#ifndef QIMAP_CORE_NORMALIZE_H_
#define QIMAP_CORE_NORMALIZE_H_

#include "dependency/schema_mapping.h"

namespace qimap {

/// Splits every dependency's rhs into its existential-connected
/// components, producing a logically equivalent mapping whose tgds have
/// the smallest heads possible without Skolemizing:
///
///   P(x) -> Q(x) & R(x)            becomes two tgds, while
///   P(x) -> exists y: Q(x,y) & R(y,x)   stays whole (the shared
///   existential ties the two atoms together).
///
/// Normal forms shrink the `psi` handed to MinGen (whose search is
/// exponential in the head size) and make `Sigma*` finer-grained; the
/// equivalence is assertable with EquivalentTgdSets.
SchemaMapping NormalizeMapping(const SchemaMapping& m);

}  // namespace qimap

#endif  // QIMAP_CORE_NORMALIZE_H_
