#include "core/so_composition.h"

#include <functional>
#include <map>
#include <set>
#include <string>
#include <algorithm>

#include "base/strings.h"
#include "relational/homomorphism.h"

namespace qimap {
namespace {

// Substitutes variables inside a term (recursively) by terms.
Term SubstituteTerm(const Term& term, const std::map<Value, Term>& theta) {
  if (term.IsVariable()) {
    auto it = theta.find(term.variable);
    return it != theta.end() ? it->second : term;
  }
  Term out = term;
  for (Term& arg : out.args) arg = SubstituteTerm(arg, theta);
  return out;
}

// Renames every variable occurring in the term with an "@<slot>" suffix.
Term RenameTermApart(const Term& term, size_t slot) {
  if (term.IsVariable()) {
    return Term::Var(Value::MakeVariable(term.variable.ToString() + "@" +
                                         std::to_string(slot)));
  }
  Term out = term;
  for (Term& arg : out.args) arg = RenameTermApart(arg, slot);
  return out;
}

// Renames an implication's variables apart for use as the `slot`-th copy.
SoImplication RenameImplicationApart(const SoImplication& implication,
                                     size_t slot) {
  SoImplication out;
  for (const Atom& atom : implication.lhs) {
    Atom renamed = atom;
    for (Value& v : renamed.args) {
      v = Value::MakeVariable(v.ToString() + "@" + std::to_string(slot));
    }
    out.lhs.push_back(std::move(renamed));
  }
  for (const auto& [a, b] : implication.equalities) {
    out.equalities.emplace_back(RenameTermApart(a, slot),
                                RenameTermApart(b, slot));
  }
  for (const TermAtom& atom : implication.rhs) {
    TermAtom renamed = atom;
    for (Term& t : renamed.args) t = RenameTermApart(t, slot);
    out.rhs.push_back(std::move(renamed));
  }
  return out;
}

// Rewrites the renamed-apart copy variables ("e@0") to readable unique
// names: the base name when free, otherwise base name + counter.
void PrettifySoImplication(SoImplication* implication) {
  std::set<std::string> taken;
  std::map<Value, Value> rename;
  auto target_name = [&taken](const std::string& name) {
    std::string base = name.substr(0, name.find('@'));
    std::string candidate = base;
    size_t counter = 2;
    while (taken.count(candidate) > 0) {
      candidate = base + std::to_string(counter++);
    }
    taken.insert(candidate);
    return candidate;
  };
  auto rename_value = [&](Value& v) {
    if (!v.IsVariable()) return;
    std::string name = v.ToString();
    if (name.find('@') == std::string::npos) {
      taken.insert(name);
      return;
    }
    auto it = rename.find(v);
    if (it == rename.end()) {
      it = rename.emplace(v, Value::MakeVariable(target_name(name))).first;
    }
    v = it->second;
  };
  std::function<void(Term*)> rename_term = [&](Term* term) {
    if (term->IsVariable()) {
      rename_value(term->variable);
      return;
    }
    for (Term& arg : term->args) rename_term(&arg);
  };
  for (Atom& atom : implication->lhs) {
    for (Value& v : atom.args) rename_value(v);
  }
  for (auto& [a, b] : implication->equalities) {
    rename_term(&a);
    rename_term(&b);
  }
  for (TermAtom& atom : implication->rhs) {
    for (Term& t : atom.args) rename_term(&t);
  }
}

SoMapping SkolemizeWithPrefix(const SchemaMapping& m,
                              const std::string& prefix) {
  SoMapping so;
  so.source = m.source;
  so.target = m.target;
  for (size_t i = 0; i < m.tgds.size(); ++i) {
    const Tgd& tgd = m.tgds[i];
    std::vector<Value> frontier = tgd.FrontierVariables();
    std::vector<Term> frontier_terms;
    frontier_terms.reserve(frontier.size());
    for (const Value& v : frontier) frontier_terms.push_back(Term::Var(v));
    std::map<Value, Term> theta;
    for (const Value& y : tgd.ExistentialVariables()) {
      theta.emplace(y, Term::Func(prefix + std::to_string(i + 1) + "_" +
                                      y.ToString(),
                                  frontier_terms));
    }
    SoImplication implication;
    implication.lhs = tgd.lhs;
    for (const Atom& atom : tgd.rhs) {
      TermAtom term_atom;
      term_atom.relation = atom.relation;
      for (const Value& v : atom.args) {
        term_atom.args.push_back(SubstituteTerm(Term::Var(v), theta));
      }
      implication.rhs.push_back(std::move(term_atom));
    }
    so.implications.push_back(std::move(implication));
  }
  return so;
}

}  // namespace

SoMapping Skolemize(const SchemaMapping& m) {
  return SkolemizeWithPrefix(m, "f");
}

Result<SoMapping> ComposeSo(const SchemaMapping& m12,
                            const SchemaMapping& m23) {
  SoMapping so12 = SkolemizeWithPrefix(m12, "f");
  SoMapping so23 = SkolemizeWithPrefix(m23, "g");

  SoMapping composed;
  composed.source = m12.source;
  composed.target = m23.target;

  for (const SoImplication& sigma23 : so23.implications) {
    const size_t slots = sigma23.lhs.size();
    std::vector<std::vector<std::pair<size_t, size_t>>> candidates(slots);
    bool feasible = true;
    for (size_t s = 0; s < slots; ++s) {
      for (size_t t = 0; t < so12.implications.size(); ++t) {
        for (size_t r = 0; r < so12.implications[t].rhs.size(); ++r) {
          if (so12.implications[t].rhs[r].relation ==
              sigma23.lhs[s].relation) {
            candidates[s].emplace_back(t, r);
          }
        }
      }
      if (candidates[s].empty()) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;

    std::vector<size_t> choice(slots, 0);
    while (true) {
      SoImplication implication;
      std::map<Value, Term> theta;  // sigma23 variable -> term
      for (size_t s = 0; s < slots; ++s) {
        auto [t, r] = candidates[s][choice[s]];
        SoImplication copy =
            RenameImplicationApart(so12.implications[t], s);
        for (Atom& atom : copy.lhs) {
          if (std::find(implication.lhs.begin(), implication.lhs.end(),
                        atom) == implication.lhs.end()) {
            implication.lhs.push_back(std::move(atom));
          }
        }
        for (auto& eq : copy.equalities) {
          implication.equalities.push_back(std::move(eq));
        }
        const TermAtom& produced = copy.rhs[r];
        const Atom& consumed = sigma23.lhs[s];
        for (size_t p = 0; p < consumed.args.size(); ++p) {
          const Value& v = consumed.args[p];
          const Term& t_term = produced.args[p];
          auto it = theta.find(v);
          if (it == theta.end()) {
            theta.emplace(v, t_term);
          } else if (!(it->second == t_term)) {
            // The same sigma23 variable resolves to two different terms:
            // keep the constraint as an lhs equality (this is where the
            // genuinely second-order conditions arise).
            implication.equalities.emplace_back(it->second, t_term);
          }
        }
      }
      for (const TermAtom& atom : sigma23.rhs) {
        TermAtom mapped = atom;
        for (Term& term : mapped.args) term = SubstituteTerm(term, theta);
        implication.rhs.push_back(std::move(mapped));
      }
      PrettifySoImplication(&implication);
      if (std::find(composed.implications.begin(),
                    composed.implications.end(),
                    implication) == composed.implications.end()) {
        composed.implications.push_back(std::move(implication));
      }
      size_t pos = 0;
      while (pos < slots) {
        if (++choice[pos] < candidates[pos].size()) break;
        choice[pos] = 0;
        ++pos;
      }
      if (pos == slots) break;
    }
  }
  return composed;
}

namespace {

// Evaluates a term under a variable assignment and the free (term
// algebra) interpretation: each distinct ground term denotes one fresh
// null, interned in `term_values`.
Value EvalTerm(const Term& term, const Assignment& h,
               std::map<std::string, Value>* term_values,
               uint32_t* next_null) {
  if (term.IsVariable()) return Resolve(h, term.variable);
  std::string signature = term.function + "(";
  for (size_t i = 0; i < term.args.size(); ++i) {
    if (i > 0) signature += ",";
    signature += EvalTerm(term.args[i], h, term_values, next_null)
                     .ToString();
  }
  signature += ")";
  auto it = term_values->find(signature);
  if (it == term_values->end()) {
    it = term_values->emplace(signature, Value::MakeNull((*next_null)++))
             .first;
  }
  return it->second;
}

}  // namespace

Result<Instance> SoChase(const Instance& source_inst, const SoMapping& m,
                         const SoChaseOptions& options) {
  Instance target_inst(m.target);
  uint32_t next_null = options.first_null_label != 0
                           ? options.first_null_label
                           : source_inst.MaxNullLabel() + 1;
  std::map<std::string, Value> term_values;
  size_t steps = 0;
  Status failure = Status::OK();

  for (const SoImplication& implication : m.implications) {
    HomSearchOptions lhs_options;
    ForEachHomomorphism(
        implication.lhs, source_inst, {}, lhs_options,
        [&](const Assignment& h) {
          if (++steps > options.max_steps) {
            failure = Status::ResourceExhausted("SO chase step limit");
            return false;
          }
          for (const auto& [a, b] : implication.equalities) {
            if (!(EvalTerm(a, h, &term_values, &next_null) ==
                  EvalTerm(b, h, &term_values, &next_null))) {
              return true;  // equality guard fails; skip this match
            }
          }
          for (const TermAtom& atom : implication.rhs) {
            Tuple tuple;
            tuple.reserve(atom.args.size());
            for (const Term& term : atom.args) {
              tuple.push_back(EvalTerm(term, h, &term_values, &next_null));
            }
            Status status = target_inst.AddFact(atom.relation,
                                                std::move(tuple));
            if (!status.ok()) {
              failure = status;
              return false;
            }
          }
          return true;
        });
    if (!failure.ok()) return failure;
  }
  return target_inst;
}

}  // namespace qimap
