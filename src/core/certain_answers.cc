#include "core/certain_answers.h"

#include <algorithm>
#include <set>

#include "base/strings.h"
#include "dependency/parser.h"
#include "relational/homomorphism.h"

namespace qimap {

Result<ConjunctiveQuery> ParseQuery(const Schema& schema,
                                    std::string_view head_csv,
                                    std::string_view body) {
  // Reuse the dependency parser: parse "body -> body" against the same
  // schema on both sides, then keep the lhs as the query body.
  std::string round_trip = std::string(body) + " -> " + std::string(body);
  QIMAP_ASSIGN_OR_RETURN(DisjunctiveTgd parsed,
                         ParseDisjunctiveTgd(schema, schema, round_trip));
  if (!parsed.IsPlainTgd()) {
    return Status::InvalidArgument(
        "query bodies admit neither guards nor disjunction: " +
        std::string(body));
  }
  ConjunctiveQuery query;
  query.body = std::move(parsed.lhs);
  std::set<Value> body_vars = VariableSetOf(query.body);
  for (const std::string& name : SplitAndTrim(head_csv, ',')) {
    Value v = Value::MakeVariable(name);
    if (body_vars.count(v) == 0) {
      return Status::InvalidArgument("head variable '" + name +
                                     "' does not occur in the query body");
    }
    query.head.push_back(v);
  }
  return query;
}

std::vector<Tuple> EvaluateQuery(const ConjunctiveQuery& query,
                                 const Instance& instance) {
  std::set<Tuple> answers;
  HomSearchOptions options;
  ForEachHomomorphism(query.body, instance, {}, options,
                      [&](const Assignment& h) {
                        Tuple answer;
                        answer.reserve(query.head.size());
                        for (const Value& v : query.head) {
                          answer.push_back(Resolve(h, v));
                        }
                        answers.insert(std::move(answer));
                        return true;
                      });
  return std::vector<Tuple>(answers.begin(), answers.end());
}

std::vector<Tuple> CertainAnswers(const ConjunctiveQuery& query,
                                  const Instance& universal_solution) {
  std::vector<Tuple> all = EvaluateQuery(query, universal_solution);
  std::vector<Tuple> certain;
  for (Tuple& answer : all) {
    bool ground = std::all_of(answer.begin(), answer.end(),
                              [](const Value& v) { return v.IsConstant(); });
    if (ground) certain.push_back(std::move(answer));
  }
  return certain;
}

}  // namespace qimap
