#ifndef QIMAP_CORE_SOUNDNESS_H_
#define QIMAP_CORE_SOUNDNESS_H_

#include <optional>
#include <vector>

#include "base/status.h"
#include "chase/disjunctive_chase.h"
#include "dependency/schema_mapping.h"
#include "relational/instance.h"

namespace qimap {

/// The artifacts of one bidirectional data-exchange round trip
/// (Definition 6.5 and Figure 1): chase a ground instance forward, chase
/// the result back with the reverse mapping's disjunctive dependencies,
/// then re-chase every recovered source instance forward.
struct RoundTrip {
  /// `U = chase_Sigma(I)`.
  Instance universal;
  /// `V = chase_Sigma'(U)`: the leaves of the disjunctive chase tree.
  std::vector<Instance> recovered;
  /// `U' = chase_Sigma(V)`, member-wise.
  std::vector<Instance> rechased;
  /// Soundness held: some member of `U'` maps homomorphically into `U`.
  bool sound = false;
  /// Faithfulness held: some member of `U'` is homomorphically equivalent
  /// to `U`.
  bool faithful = false;
  /// Index (into `recovered`/`rechased`) of a faithful witness — the
  /// "data-exchange equivalent" recovered source instance.
  std::optional<size_t> faithful_witness;
};

/// Performs the round trip of Definition 6.5 for one ground instance and
/// evaluates both soundness and faithfulness of `m_prime` with respect to
/// `m` on it. Theorem 6.7 predicts `sound` for every quasi-inverse in the
/// disjunctive-tgd language with inequalities among constants; Theorem 6.8
/// predicts `faithful` for the output of algorithm QuasiInverse.
Result<RoundTrip> CheckRoundTrip(
    const SchemaMapping& m, const ReverseMapping& m_prime,
    const Instance& ground,
    const DisjunctiveChaseOptions& options = {});

}  // namespace qimap

#endif  // QIMAP_CORE_SOUNDNESS_H_
