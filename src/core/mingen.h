#ifndef QIMAP_CORE_MINGEN_H_
#define QIMAP_CORE_MINGEN_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "dependency/schema_mapping.h"
#include "relational/atom.h"

namespace qimap {

class Budget;  // base/budget.h

/// Per-run statistics of the MinGen search (same convention as
/// ChaseStats; totals are mirrored into the `mingen.*` metrics).
struct MinGenStats {
  /// Candidate conjunctions whose generator property was tested (the
  /// budget checked against MinGenOptions::max_candidates).
  size_t candidates = 0;
  /// Candidates dropped by the near-canonical dedup key.
  size_t dedup_pruned = 0;
  /// Candidates dropped as strict supersets of a found generator.
  size_t dominated_pruned = 0;
  /// Chase-based IsGenerator tests actually run.
  size_t generator_tests = 0;
  /// Minimal generators returned.
  size_t generators = 0;
  /// When the provenance journal is enabled: the journal event id of each
  /// returned minimal generator, parallel to the result vector. Callers
  /// (QuasiInverse) attribute their emitted rules to these events.
  std::vector<uint64_t> generator_event_ids;
  /// True when a budget limit ended the search early (see
  /// ChaseStats::partial).
  bool partial = false;
};

/// Options for the MinGen search.
struct MinGenOptions {
  /// Bound on the number of conjuncts of a generator. 0 means the
  /// Lemma 4.4 bound `s1 * s2` (max lhs size of Sigma times the number of
  /// atoms in psi).
  size_t max_atoms = 0;
  /// Budget on the number of candidate conjunctions whose chase is tested;
  /// exceeding it yields ResourceExhausted.
  size_t max_candidates = 1u << 22;
  /// Deduplicate search candidates by a near-canonical key (up to renaming
  /// of fresh variables). Always correct to disable — the output is
  /// deduplicated regardless — but the search revisits permuted copies;
  /// exposed as an ablation knob for the benchmarks.
  bool dedup_candidates = true;
  /// Optional out-param: filled with this run's search statistics.
  MinGenStats* stats = nullptr;
  /// Shared resource governor (see ChaseOptions::budget); also handed to
  /// the inner IsGenerator chases so one budget bounds the whole search.
  Budget* budget = nullptr;
  /// Best-effort partial result on a budget trip: the (unminimized)
  /// generators found so far. See ChaseOptions::partial_out.
  std::vector<Conjunction>* partial_out = nullptr;
};

/// Decides whether `beta` (a conjunction of source atoms over variables
/// `x ∪ z`) is a generator of `exists y psi(x, y)` with respect to the
/// mapping's tgds (Definition 4.2): the tgd `beta -> exists y psi` must be
/// a logical consequence of Sigma, which holds iff chasing the canonical
/// instance `I_beta` with Sigma yields at least `I_psi(x, y')` for some
/// substitution `y'` for `y` (with the `x` frozen).
/// `budget`, when non-null, governs the inner chase of `I_beta`.
Result<bool> IsGenerator(const SchemaMapping& m, const Conjunction& beta,
                         const Conjunction& psi,
                         const std::vector<Value>& x,
                         Budget* budget = nullptr);

/// True iff `small` is a sub-conjunction of `big` up to a (bijective)
/// renaming of the variables not in `x`: some injective renaming of
/// small's fresh variables into big's fresh variables sends every conjunct
/// of `small` to a conjunct of `big`.
bool IsSubConjunctionUpToRenaming(const Conjunction& small,
                                  const Conjunction& big,
                                  const std::vector<Value>& x);

/// The paper's algorithm MinGen (Section 4): returns all minimal
/// generators of `exists y psi(x, y)` with respect to the mapping, up to
/// renaming of the fresh variables. `x` lists the shared variables (which
/// every generator must contain); the remaining variables of `psi` are the
/// existential `y`. Fresh generator variables are reported as `#z1, #z2,
/// ...` in first-occurrence order.
Result<std::vector<Conjunction>> MinGen(const SchemaMapping& m,
                                        const Conjunction& psi,
                                        const std::vector<Value>& x,
                                        const MinGenOptions& options = {});

}  // namespace qimap

#endif  // QIMAP_CORE_MINGEN_H_
