#include "core/composition.h"

#include <algorithm>
#include <set>
#include <vector>

#include "chase/chase.h"
#include "dependency/satisfaction.h"
#include "relational/homomorphism.h"

namespace qimap {

Result<bool> InComposition(const SchemaMapping& m,
                           const ReverseMapping& m_prime,
                           const Instance& i1, const Instance& i2,
                           const CompositionOptions& options) {
  QIMAP_ASSIGN_OR_RETURN(Instance universal, Chase(i1, m));

  // Fast path: the universal solution itself (its nulls are already
  // distinct fresh values outside both active domains).
  if (SatisfiesAllReverse(universal, i2, m_prime)) return true;

  // Collect the nulls of the universal solution.
  std::vector<Value> nulls;
  for (const Value& v : universal.ActiveDomain()) {
    if (v.IsNull()) nulls.push_back(v);
  }
  if (nulls.empty()) return false;  // no other homomorphic image exists

  // Candidate pool: both active domains plus k pairwise-distinct fresh
  // nulls (labels above anything in sight).
  std::vector<Value> pool;
  {
    std::set<Value> seen;
    for (const Instance* inst : {&i1, &i2}) {
      for (const Value& v : inst->ActiveDomain()) {
        if (seen.insert(v).second) pool.push_back(v);
      }
    }
    uint32_t base = std::max(universal.MaxNullLabel(), i2.MaxNullLabel()) + 1;
    for (size_t i = 0; i < nulls.size(); ++i) {
      pool.push_back(Value::MakeNull(base + static_cast<uint32_t>(i)));
    }
  }

  // Guard the odometer size.
  double estimate = 1.0;
  for (size_t i = 0; i < nulls.size(); ++i) {
    estimate *= static_cast<double>(pool.size());
    if (estimate > static_cast<double>(options.max_assignments)) {
      return Status::ResourceExhausted(
          "composition oracle: too many null assignments (" +
          std::to_string(pool.size()) + "^" +
          std::to_string(nulls.size()) + ")");
    }
  }

  // Enumerate all maps nulls -> pool.
  std::vector<size_t> idx(nulls.size(), 0);
  while (true) {
    Assignment h;
    for (size_t i = 0; i < nulls.size(); ++i) {
      h.emplace(nulls[i], pool[idx[i]]);
    }
    Instance image = ApplyAssignmentToInstance(universal, h);
    if (SatisfiesAllReverse(image, i2, m_prime)) return true;
    size_t pos = 0;
    while (pos < idx.size()) {
      if (++idx[pos] < pool.size()) break;
      idx[pos] = 0;
      ++pos;
    }
    if (pos == idx.size()) break;
  }
  return false;
}

}  // namespace qimap
