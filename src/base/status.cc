#include "base/status.h"

#include <atomic>

namespace qimap {
namespace {

std::atomic<StatusErrorHook> g_status_error_hook{nullptr};

}  // namespace

void SetStatusErrorHook(StatusErrorHook hook) {
  g_status_error_hook.store(hook, std::memory_order_relaxed);
}

namespace status_internal {

void NotifyError(StatusCode code, const std::string& message) {
  StatusErrorHook hook =
      g_status_error_hook.load(std::memory_order_relaxed);
  if (hook != nullptr) hook(code, message);
}

}  // namespace status_internal

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace qimap
