#include "base/thread_pool.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/budget.h"

namespace qimap {
namespace {

void DefaultThreadConfigWarning(const char* message) {
  std::fprintf(stderr, "[qimap:warn] %s\n", message);
}

std::atomic<ThreadConfigWarningHook> g_thread_config_warning_hook{
    &DefaultThreadConfigWarning};

void WarnThreadConfig(const std::string& message) {
  g_thread_config_warning_hook.load(std::memory_order_acquire)(
      message.c_str());
}

}  // namespace

ThreadConfigWarningHook SetThreadConfigWarningHook(
    ThreadConfigWarningHook hook) {
  if (hook == nullptr) hook = &DefaultThreadConfigWarning;
  return g_thread_config_warning_hook.exchange(hook,
                                               std::memory_order_acq_rel);
}

size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) return requested;
  const char* env = std::getenv("QIMAP_CHASE_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  errno = 0;
  long parsed = std::strtol(env, &end, 10);
  if (end == env || end == nullptr || *end != '\0' || errno == ERANGE ||
      parsed < 1) {
    WarnThreadConfig("QIMAP_CHASE_THREADS='" + std::string(env) +
                     "' is not a positive integer; using 1 thread");
    return 1;
  }
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;  // unknown topology: be conservative
  size_t cap = kMaxHardwareOversubscription * hw;
  if (static_cast<unsigned long>(parsed) > cap) {
    WarnThreadConfig("QIMAP_CHASE_THREADS=" + std::string(env) +
                     " exceeds " +
                     std::to_string(kMaxHardwareOversubscription) +
                     "x hardware concurrency; capping at " +
                     std::to_string(cap) + " threads");
    return cap;
  }
  return static_cast<size_t>(parsed);
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  // The calling thread participates in every batch, so spawn one fewer
  // worker than the requested parallelism.
  for (size_t i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn,
                             const Cancellation* cancel) {
  if (n == 0) return;
  if (workers_.empty() || n < 2) {
    for (size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) return;
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    cancel_ = cancel;
    n_ = n;
    cursor_ = 0;
    active_ = workers_.size();
    ++batch_;
  }
  work_ready_.notify_all();
  // The caller works the same cursor as the pool threads.
  while (true) {
    size_t index;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cursor_ >= n_) break;
      if (cancel != nullptr && cancel->cancelled()) {
        cursor_ = n_;  // park the cursor so workers stop too
        break;
      }
      index = cursor_++;
    }
    fn(index);
  }
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [this] { return active_ == 0; });
  fn_ = nullptr;
  cancel_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t last_batch = 0;
  while (true) {
    const std::function<void(size_t)>* fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || (fn_ != nullptr && batch_ != last_batch);
      });
      if (shutdown_) return;
      last_batch = batch_;
      fn = fn_;
    }
    while (true) {
      size_t index;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (cursor_ >= n_) break;
        if (cancel_ != nullptr && cancel_->cancelled()) {
          cursor_ = n_;  // park the cursor so peers stop too
          break;
        }
        index = cursor_++;
      }
      (*fn)(index);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace qimap
