#ifndef QIMAP_BASE_STRINGS_H_
#define QIMAP_BASE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace qimap {

/// Joins the elements of `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep`, trimming ASCII whitespace from each piece and
/// dropping empty pieces.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

}  // namespace qimap

#endif  // QIMAP_BASE_STRINGS_H_
