#include "base/fault.h"

#include <cstdlib>

namespace qimap {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kNone:
      return "none";
    case FaultSite::kAllocCheckpoint:
      return "alloc";
    case FaultSite::kTriggerBatch:
      return "batch";
    case FaultSite::kPoolTask:
      return "task";
  }
  return "none";
}

std::string FaultPlan::ToString() const {
  if (!active()) return "none";
  std::string text = FaultSiteName(site);
  text += ":" + std::to_string(nth);
  if (cancel) text += ":cancel";
  return text;
}

Result<FaultPlan> FaultPlan::Parse(std::string_view text) {
  auto bad = [&text]() {
    return Status::InvalidArgument(
        "bad fault plan \"" + std::string(text) +
        "\"; expected <site>:<nth>[:cancel] with site in {alloc, batch, "
        "task}, e.g. \"alloc:3\" or \"task:5:cancel\"");
  };
  size_t colon = text.find(':');
  if (colon == std::string_view::npos) return bad();
  std::string_view site_text = text.substr(0, colon);
  std::string_view rest = text.substr(colon + 1);

  FaultPlan plan;
  if (site_text == "alloc") {
    plan.site = FaultSite::kAllocCheckpoint;
  } else if (site_text == "batch") {
    plan.site = FaultSite::kTriggerBatch;
  } else if (site_text == "task") {
    plan.site = FaultSite::kPoolTask;
  } else {
    return bad();
  }

  size_t action = rest.find(':');
  if (action != std::string_view::npos) {
    if (rest.substr(action + 1) != "cancel") return bad();
    plan.cancel = true;
    rest = rest.substr(0, action);
  }
  if (rest.empty()) return bad();
  uint64_t nth = 0;
  for (char c : rest) {
    if (c < '0' || c > '9') return bad();
    nth = nth * 10 + static_cast<uint64_t>(c - '0');
  }
  if (nth == 0) return bad();
  plan.nth = nth;
  return plan;
}

FaultPlan FaultPlan::FromEnv() {
  const char* env = std::getenv("QIMAP_FAULT_PLAN");
  if (env == nullptr || *env == '\0') return FaultPlan{};
  Result<FaultPlan> parsed = Parse(env);
  if (!parsed.ok()) return FaultPlan{};
  return *parsed;
}

}  // namespace qimap
