#include "base/value.h"

#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

namespace qimap {
namespace {

// Process-wide interner mapping names to dense ids. Guarded by a mutex so
// that library users may build mappings from multiple threads. Allocated
// once and never destroyed (trivial-destructor rule for static storage).
class Interner {
 public:
  uint32_t Intern(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  std::string Name(uint32_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= names_.size()) return "<bad-id>";
    return names_[id];
  }

 private:
  std::mutex mu_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> ids_;
};

Interner& ConstantInterner() {
  static Interner& interner = *new Interner();
  return interner;
}

Interner& VariableInterner() {
  static Interner& interner = *new Interner();
  return interner;
}

}  // namespace

Value Value::MakeConstant(std::string_view name) {
  return Value(ValueKind::kConstant, ConstantInterner().Intern(name));
}

Value Value::MakeNull(uint32_t label) {
  return Value(ValueKind::kNull, label);
}

Value Value::MakeVariable(std::string_view name) {
  return Value(ValueKind::kVariable, VariableInterner().Intern(name));
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kConstant:
      return ConstantInterner().Name(id_);
    case ValueKind::kNull:
      return "_N" + std::to_string(id_);
    case ValueKind::kVariable:
      return VariableInterner().Name(id_);
  }
  return "<bad-value>";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace qimap
