#ifndef QIMAP_BASE_RNG_H_
#define QIMAP_BASE_RNG_H_

#include <cstdint>

namespace qimap {

/// A small, fast, deterministic PRNG (xorshift64*), used by the workload
/// generators. Deterministic seeding keeps benchmark workloads and property
/// tests reproducible across runs and platforms.
class Rng {
 public:
  /// Seeds the generator; a zero seed is remapped to a fixed nonzero value.
  explicit Rng(uint64_t seed) : state_(seed == 0 ? 0x9E3779B97F4A7C15ULL
                                                 : seed) {}

  /// Returns the next 64-bit pseudorandom value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Returns a uniform value in `[0, bound)`; `bound` must be positive.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Returns a uniform int in the inclusive range `[lo, hi]`.
  int UniformInt(int lo, int hi) {
    return lo + static_cast<int>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Returns true with probability `num / den`.
  bool Chance(uint64_t num, uint64_t den) { return Uniform(den) < num; }

 private:
  uint64_t state_;
};

}  // namespace qimap

#endif  // QIMAP_BASE_RNG_H_
