#include "base/budget.h"

#include <chrono>
#include <utility>

namespace qimap {
namespace {

uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string NormalizedHint(const char* hint) {
  if (hint == nullptr) return "";
  // Exactly one separating space before a non-empty hint, regardless of
  // how the caller spelled it.
  while (*hint == ' ') ++hint;
  if (*hint == '\0') return "";
  return std::string(" ") + hint;
}

}  // namespace

const char* BudgetLimitName(BudgetLimit limit) {
  switch (limit) {
    case BudgetLimit::kNone:
      return "none";
    case BudgetLimit::kSteps:
      return "steps";
    case BudgetLimit::kDeadline:
      return "deadline";
    case BudgetLimit::kMemory:
      return "memory";
    case BudgetLimit::kNulls:
      return "nulls";
    case BudgetLimit::kCancelled:
      return "cancelled";
    case BudgetLimit::kFault:
      return "fault";
  }
  return "none";
}

Budget::Budget(BudgetSpec spec) : spec_(std::move(spec)) {
  // Only pay a clock read at construction when a deadline can trip.
  if (spec_.deadline_us != 0 || spec_.clock) {
    start_us_ = spec_.clock ? spec_.clock() : SteadyNowUs();
  }
}

uint64_t Budget::elapsed_us() const {
  uint64_t now = spec_.clock ? spec_.clock() : SteadyNowUs();
  return now >= start_us_ ? now - start_us_ : 0;
}

std::string Budget::UsageString() const {
  std::string usage = "steps=" + std::to_string(steps());
  usage += ", nulls=" + std::to_string(nulls());
  usage += ", bytes=" + std::to_string(memory_bytes());
  if (spec_.deadline_us != 0 || spec_.clock) {
    usage += ", elapsed_us=" + std::to_string(elapsed_us());
  }
  return usage;
}

Status Budget::Trip(BudgetLimit limit, std::string message) {
  Status status = limit == BudgetLimit::kCancelled
                      ? Status::Cancelled(message)
                      : Status::ResourceExhausted(message);
  BudgetLimit expected = BudgetLimit::kNone;
  {
    std::lock_guard<std::mutex> lock(trip_mu_);
    // The metadata is written before tripped_ publishes it, so a sticky
    // read under the same mutex always sees a consistent pair.
    if (tripped_.compare_exchange_strong(expected, limit,
                                         std::memory_order_relaxed)) {
      trip_code_ = status.code();
      trip_message_ = status.message();
      return status;
    }
  }
  // Another thread tripped first; its limit is the budget's verdict.
  return StickyStatus();
}

Status Budget::StickyStatus() const {
  std::lock_guard<std::mutex> lock(trip_mu_);
  return Status(trip_code_, trip_message_);
}

Status Budget::Check(const char* what) {
  if (exhausted()) return StickyStatus();
  if (spec_.cancellation != nullptr && spec_.cancellation->cancelled()) {
    return Trip(BudgetLimit::kCancelled,
                std::string(what) + " was cancelled");
  }
  if (spec_.deadline_us != 0 && elapsed_us() > spec_.deadline_us) {
    return Trip(BudgetLimit::kDeadline,
                std::string(what) + " exceeded its deadline (" +
                    std::to_string(spec_.deadline_us / 1000) + " ms)");
  }
  return Status::OK();
}

Status Budget::Tick(const char* what, const char* hint) {
  QIMAP_RETURN_IF_ERROR(Check(what));
  if (spec_.max_steps != 0 &&
      steps_.load(std::memory_order_relaxed) >= spec_.max_steps) {
    return Trip(BudgetLimit::kSteps,
                std::string(what) + " exceeded its step limit (" +
                    std::to_string(spec_.max_steps) + " steps)" +
                    NormalizedHint(hint));
  }
  steps_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Budget::ChargeNulls(const char* what, size_t count) {
  if (exhausted()) return StickyStatus();
  size_t total = nulls_.fetch_add(count, std::memory_order_relaxed) + count;
  if (spec_.max_nulls != 0 && total > spec_.max_nulls) {
    return Trip(BudgetLimit::kNulls,
                std::string(what) + " exceeded its null budget (" +
                    std::to_string(spec_.max_nulls) + " nulls)");
  }
  return Status::OK();
}

Status Budget::ChargeMemory(const char* what, size_t bytes) {
  if (exhausted()) return StickyStatus();
  QIMAP_RETURN_IF_ERROR(Fault(FaultSite::kAllocCheckpoint, alloc_hits_,
                              what));
  size_t total = bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (spec_.max_memory_bytes != 0 && total > spec_.max_memory_bytes) {
    return Trip(BudgetLimit::kMemory,
                std::string(what) + " exceeded its memory budget (" +
                    std::to_string(spec_.max_memory_bytes) + " bytes)");
  }
  return Status::OK();
}

Status Budget::OnTriggerBatch(const char* what) {
  QIMAP_RETURN_IF_ERROR(Check(what));
  return Fault(FaultSite::kTriggerBatch, batch_hits_, what);
}

Status Budget::OnPoolTask(const char* what) {
  QIMAP_RETURN_IF_ERROR(Check(what));
  return Fault(FaultSite::kPoolTask, task_hits_, what);
}

Status Budget::Fault(FaultSite site, std::atomic<uint64_t>& hits,
                     const char* what) {
  const FaultPlan& plan = spec_.fault_plan;
  if (!plan.active() || plan.site != site) return Status::OK();
  uint64_t hit = hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (hit != plan.nth) return Status::OK();
  if (plan.cancel) {
    // The cancel action flips the token instead of failing in place; the
    // pipeline notices at its next cooperative check, exactly like an
    // external Cancel().
    if (spec_.cancellation != nullptr) spec_.cancellation->Cancel();
    return Status::OK();
  }
  return Trip(BudgetLimit::kFault, std::string(what) +
                                       " hit injected fault " +
                                       plan.ToString());
}

}  // namespace qimap
