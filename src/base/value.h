#ifndef QIMAP_BASE_VALUE_H_
#define QIMAP_BASE_VALUE_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace qimap {

/// The kind of an individual value appearing in instances and dependencies.
///
/// Following the paper (Section 2), we work with a fixed infinite set
/// `Const` of constants and a disjoint infinite set `Var` of (labeled)
/// nulls. In addition, "canonical instances" such as the paper's
/// `I_beta(x,z)` contain *variables* in their active domain, so variables
/// are first-class values here as well.
enum class ValueKind : uint8_t {
  kConstant = 0,  ///< A named constant from `Const`.
  kNull = 1,      ///< A labeled null from `Var` (written `_N<k>`).
  kVariable = 2,  ///< A named variable (only in dependencies / canonical
                  ///< instances).
};

/// An individual value: a constant, a labeled null, or a variable.
///
/// Values are small (8 bytes), trivially copyable, totally ordered, and
/// hashable. Constant and variable names are interned in a process-wide
/// table; nulls are identified by a numeric label.
class Value {
 public:
  /// Constructs the constant named `name` (interned; same name == same
  /// value).
  static Value MakeConstant(std::string_view name);
  /// Constructs the labeled null `_N<label>`.
  static Value MakeNull(uint32_t label);
  /// Constructs the variable named `name` (interned).
  static Value MakeVariable(std::string_view name);

  /// Default-constructs the constant with interned id 0; prefer the
  /// factories.
  Value() : kind_(ValueKind::kConstant), id_(0) {}

  ValueKind kind() const { return kind_; }
  bool IsConstant() const { return kind_ == ValueKind::kConstant; }
  bool IsNull() const { return kind_ == ValueKind::kNull; }
  bool IsVariable() const { return kind_ == ValueKind::kVariable; }

  /// The interned name id (constants, variables) or the numeric label
  /// (nulls).
  uint32_t id() const { return id_; }

  /// Renders the value: constants and variables print their name; nulls
  /// print as `_N<label>`.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) = default;
  friend auto operator<=>(const Value& a, const Value& b) = default;

 private:
  Value(ValueKind kind, uint32_t id) : kind_(kind), id_(id) {}

  ValueKind kind_;
  uint32_t id_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Hash functor for Value, usable with unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const {
    return std::hash<uint64_t>{}((static_cast<uint64_t>(v.kind()) << 32) |
                                 v.id());
  }
};

}  // namespace qimap

#endif  // QIMAP_BASE_VALUE_H_
