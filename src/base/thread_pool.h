#ifndef QIMAP_BASE_THREAD_POOL_H_
#define QIMAP_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qimap {

class Cancellation;  // base/budget.h

/// Hook invoked when thread-count resolution has something to warn about
/// (an unparsable `QIMAP_CHASE_THREADS`, or a value capped for exceeding
/// the oversubscription limit). Base code cannot call into qimap_obs (the
/// dependency points the other way), so the default writes the message to
/// stderr in the obs log format; `obs::InstallStatusLogging` reroutes it
/// through the structured logger.
using ThreadConfigWarningHook = void (*)(const char* message);

/// Installs `hook` (nullptr restores the stderr default) and returns the
/// previous hook.
ThreadConfigWarningHook SetThreadConfigWarningHook(
    ThreadConfigWarningHook hook);

/// The largest multiple of std::thread::hardware_concurrency a
/// `QIMAP_CHASE_THREADS` request may reach before being capped. Requests
/// beyond it only add contention, and a typo'd value ("100" for "10")
/// used to oversubscribe the machine silently.
inline constexpr size_t kMaxHardwareOversubscription = 4;

/// Resolves a thread-count knob: a positive value is taken as-is; 0 reads
/// the `QIMAP_CHASE_THREADS` environment variable. An unset/empty variable
/// resolves to 1; an unparsable or non-positive value resolves to 1 with a
/// warning through the thread-config hook; a parsable value is capped at
/// `kMaxHardwareOversubscription * hardware_concurrency` (again with a
/// warning). Lets benches and ctest legs vary the thread count without
/// touching call sites.
size_t ResolveThreadCount(size_t requested);

/// A small fixed-size worker pool for fan-out over independent work items.
///
/// With one thread the pool spawns nothing and `ParallelFor` runs inline,
/// in index order — byte-identical to the pre-pool serial code, which is
/// why `ChaseOptions::num_threads = 1` (the default) leaves existing
/// callers unchanged. With more threads, `ParallelFor` hands out indexes
/// from an atomic cursor; the body must not touch shared mutable state
/// (the chase engines collect into per-index slots and do all shared
/// mutation in a serial phase afterwards).
class ThreadPool {
 public:
  /// Creates a pool of `num_threads` workers (clamped to >= 1; one means
  /// no workers are spawned at all).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs `fn(0) .. fn(n-1)`, partitioned across the pool's workers plus
  /// the calling thread; returns when all n calls have finished. Inline
  /// and in order when the pool has one thread or n < 2. Exceptions must
  /// not escape `fn`.
  ///
  /// When `cancel` is non-null, the pool checks the token before handing
  /// out each index and stops dispatching once it is cancelled: in-flight
  /// calls finish, remaining indexes are never started. Callers that
  /// collect into per-index slots must therefore treat untouched slots as
  /// "not run" after a cancelled batch (the chase engines re-check their
  /// budget before consuming the slots).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const Cancellation* cancel = nullptr);

 private:
  void WorkerLoop();

  size_t num_threads_;
  std::vector<std::thread> workers_;

  // One batch at a time: ParallelFor publishes (fn, n), workers pull
  // indexes until the cursor passes n, then the caller waits for
  // `active_` to drain.
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(size_t)>* fn_ = nullptr;
  const Cancellation* cancel_ = nullptr;
  size_t n_ = 0;
  size_t cursor_ = 0;
  size_t active_ = 0;
  uint64_t batch_ = 0;  // wakes workers exactly once per ParallelFor
  bool shutdown_ = false;
};

}  // namespace qimap

#endif  // QIMAP_BASE_THREAD_POOL_H_
