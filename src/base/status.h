#ifndef QIMAP_BASE_STATUS_H_
#define QIMAP_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace qimap {

/// Error codes used throughout the library. The library does not throw
/// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (parse errors, arity mismatches).
  kNotFound,          ///< A named entity does not exist.
  kFailedPrecondition,///< Operation not applicable to the given object.
  kResourceExhausted, ///< A configured search/size limit was exceeded.
  kCancelled,         ///< Cooperatively cancelled via base/budget.h's token.
  kInternal,          ///< Invariant violation inside the library.
};

/// Returns a human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Observer invoked whenever a non-OK Status is constructed (obs/log.h
/// installs one under `--verbose` so errors are logged where they
/// originate). nullptr disables. Not thread-safe to swap while statuses
/// are being constructed concurrently; install once at startup.
using StatusErrorHook = void (*)(StatusCode code,
                                 const std::string& message);
void SetStatusErrorHook(StatusErrorHook hook);

namespace status_internal {
/// Calls the installed hook, if any (out-of-line; error paths only).
void NotifyError(StatusCode code, const std::string& message);
}  // namespace status_internal

/// A lightweight success-or-error value, in the style of database engines
/// such as RocksDB and Arrow. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    if (code_ != StatusCode::kOk) {
      status_internal::NotifyError(code_, message_);
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error holder. Access to the value when the status is not OK
/// aborts in debug builds (the library never does this on valid paths).
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value: `return some_value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit conversion from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status from an expression producing a Status.
#define QIMAP_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::qimap::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Evaluates an expression producing Result<T>; on error returns the status,
/// otherwise assigns the value to `lhs`.
#define QIMAP_ASSIGN_OR_RETURN(lhs, expr)          \
  QIMAP_ASSIGN_OR_RETURN_IMPL(                     \
      QIMAP_STATUS_CONCAT(_res, __LINE__), lhs, expr)

#define QIMAP_STATUS_CONCAT_INNER(a, b) a##b
#define QIMAP_STATUS_CONCAT(a, b) QIMAP_STATUS_CONCAT_INNER(a, b)
#define QIMAP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace qimap

#endif  // QIMAP_BASE_STATUS_H_
