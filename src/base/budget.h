#ifndef QIMAP_BASE_BUDGET_H_
#define QIMAP_BASE_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "base/fault.h"
#include "base/status.h"

namespace qimap {

/// Resource governance for the chase engines and inversion pipelines.
///
/// The chase-based procedures behind Theorems 4.1 and 5.1 and the
/// disjunctive chase of Section 6 are worst-case exponential, so every
/// engine runs under a guard instead of running to completion. A `Budget`
/// bounds four resources at once — chase steps, wall-clock time (via an
/// injectable clock), approximate memory bytes, and generated labeled
/// nulls — and observes a cooperative `Cancellation` token that the
/// thread pool also checks between tasks. One `Budget` may be shared
/// across a whole pipeline composition (QuasiInverse -> MinGen -> inner
/// chases) so the limits bound the end-to-end run, not each stage
/// separately.
///
/// A budget trips at most once and is sticky: the first limit violation
/// records which limit tripped and every later check returns the same
/// structured status (`ResourceExhausted`, or `Cancelled` for the token),
/// so a multi-threaded wave winds down deterministically instead of
/// racing to report different limits. Engines translate a trip into a
/// best-effort partial result flagged `partial = true` plus a `budget`
/// journal event and `budget.*` metrics (obs/budget_obs.h).

/// Which resource limit tripped a Budget.
enum class BudgetLimit : uint8_t {
  kNone = 0,
  kSteps,      ///< chase-step / candidate count
  kDeadline,   ///< wall-clock deadline
  kMemory,     ///< approximate bytes charged
  kNulls,      ///< generated labeled nulls
  kCancelled,  ///< the cooperative cancellation token
  kFault,      ///< an injected fault (base/fault.h)
};

/// Short lowercase name used as the `budget.exhausted.<name>` metric
/// suffix and the journal event's dependency field: "steps", "deadline",
/// "memory", "nulls", "cancelled", "fault" ("none" for kNone).
const char* BudgetLimitName(BudgetLimit limit);

/// A cooperative cancellation token shared between a controller and the
/// pipelines it governs. Thread-safe; the thread pool checks it between
/// tasks and every budget check observes it.
class Cancellation {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token (tests reuse one across runs).
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The limits a Budget enforces. A zero limit means "unlimited". The
/// deadline is measured from Budget construction by `clock`, which tests
/// inject to make deadline trips deterministic; the default reads the
/// monotonic steady clock.
struct BudgetSpec {
  size_t max_steps = 0;
  /// Wall-clock deadline in microseconds since construction.
  uint64_t deadline_us = 0;
  size_t max_memory_bytes = 0;
  size_t max_nulls = 0;
  /// Monotone microsecond clock; empty = std::chrono::steady_clock.
  std::function<uint64_t()> clock;
  /// Observed, not owned; may be null. Shared with the thread pool.
  Cancellation* cancellation = nullptr;
  /// Deterministic fault injection (inactive by default).
  FaultPlan fault_plan;

  /// A spec with only a step limit set (the StepLimiter / RunBudget
  /// local-valve shape).
  static BudgetSpec StepsOnly(size_t max_steps) {
    BudgetSpec spec;
    spec.max_steps = max_steps;
    return spec;
  }
};

/// The shared guard. All charge/check methods are thread-safe (relaxed
/// atomics on the hot path, a mutex only on the cold trip path) and
/// sticky: after the first trip every call returns the same status.
class Budget {
 public:
  Budget() : Budget(BudgetSpec{}) {}
  explicit Budget(BudgetSpec spec);
  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Charges one chase step for pipeline `what` ("standard chase",
  /// "MinGen", ...). Checks, in order: sticky trip, cancellation,
  /// deadline, then the step limit. The tick that would exceed the limit
  /// is refused and NOT counted, so `steps()` reports work actually
  /// performed (a tripped budget reports exactly `max_steps`).
  /// `hint` is appended to the step-limit message (normalized to exactly
  /// one separating space).
  Status Tick(const char* what, const char* hint = "");

  /// Charges `count` freshly minted labeled nulls (after minting; the
  /// partial result keeps them).
  Status ChargeNulls(const char* what, size_t count = 1);

  /// Charges `bytes` of approximate memory growth. Also the
  /// FaultSite::kAllocCheckpoint injection point.
  Status ChargeMemory(const char* what, size_t bytes);

  /// Charge-free check (sticky trip, cancellation, deadline). Engines
  /// call it between fixpoint rounds and disjunctive levels.
  Status Check(const char* what);

  /// FaultSite::kTriggerBatch injection point; one call per dependency
  /// batch consumed. Also performs Check().
  Status OnTriggerBatch(const char* what);

  /// FaultSite::kPoolTask injection point; one call per pool task.
  /// Thread-safe. Also performs Check().
  Status OnPoolTask(const char* what);

  bool exhausted() const { return tripped() != BudgetLimit::kNone; }
  BudgetLimit tripped() const {
    return tripped_.load(std::memory_order_relaxed);
  }
  size_t steps() const { return steps_.load(std::memory_order_relaxed); }
  size_t nulls() const { return nulls_.load(std::memory_order_relaxed); }
  size_t memory_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  /// Microseconds since construction, per the spec's clock.
  uint64_t elapsed_us() const;
  size_t max_steps() const { return spec_.max_steps; }
  /// The limits this budget enforces (progress heartbeats derive the
  /// consumed-fraction display from consumed counts over these).
  const BudgetSpec& spec() const { return spec_; }
  Cancellation* cancellation() const { return spec_.cancellation; }

  /// Renders usage for diagnostics / journal events:
  /// "steps=12, nulls=3, bytes=456, elapsed_us=789".
  std::string UsageString() const;

 private:
  Status Trip(BudgetLimit limit, std::string message);
  Status StickyStatus() const;
  Status Fault(FaultSite site, std::atomic<uint64_t>& hits,
               const char* what);

  BudgetSpec spec_;
  uint64_t start_us_ = 0;
  std::atomic<size_t> steps_{0};
  std::atomic<size_t> nulls_{0};
  std::atomic<size_t> bytes_{0};
  std::atomic<uint64_t> alloc_hits_{0};
  std::atomic<uint64_t> batch_hits_{0};
  std::atomic<uint64_t> task_hits_{0};
  std::atomic<BudgetLimit> tripped_{BudgetLimit::kNone};
  // First-tripper-wins metadata, written once under trip_mu_ and
  // published by the store to tripped_.
  mutable std::mutex trip_mu_;
  StatusCode trip_code_ = StatusCode::kResourceExhausted;
  std::string trip_message_;
};

/// Approximate bytes a stored fact of the given arity costs (tuple
/// payload plus per-fact index overhead) — the unit the engines charge
/// `ChargeMemory` with. Deliberately coarse: the memory budget bounds
/// instance growth, it is not an allocator.
constexpr size_t ApproxFactBytes(size_t arity, size_t value_bytes) {
  return 64 + arity * value_bytes;
}

/// The per-run guard the engines actually hold: a run-local Budget
/// enforcing the run's own option limits (`max_steps` from ChaseOptions
/// and friends, so the default safety valves survive even when a shared
/// budget is attached) paired with the optional shared Budget from the
/// caller's options. Every charge hits the local budget first, then the
/// shared one; run stats (`steps()`) come from the local side so a shared
/// budget spanning several runs never skews per-run counters.
class RunBudget {
 public:
  /// `what` and `hint` must outlive the guard (string literals at every
  /// call site). `max_steps = 0` disables the local step limit;
  /// `shared` may be null.
  RunBudget(const char* what, size_t max_steps, Budget* shared,
            const char* hint = "")
      : local_(BudgetSpec::StepsOnly(max_steps)),
        shared_(shared),
        what_(what),
        hint_(hint) {}

  Status Tick() {
    Status status = local_.Tick(what_, hint_);
    if (status.ok() && shared_ != nullptr) {
      status = shared_->Tick(what_, hint_);
    }
    return status;
  }
  Status ChargeNulls(size_t count = 1) {
    Status status = local_.ChargeNulls(what_, count);
    if (status.ok() && shared_ != nullptr) {
      status = shared_->ChargeNulls(what_, count);
    }
    return status;
  }
  Status ChargeMemory(size_t bytes) {
    Status status = local_.ChargeMemory(what_, bytes);
    if (status.ok() && shared_ != nullptr) {
      status = shared_->ChargeMemory(what_, bytes);
    }
    return status;
  }
  Status Check() {
    Status status = local_.Check(what_);
    if (status.ok() && shared_ != nullptr) {
      status = shared_->Check(what_);
    }
    return status;
  }
  /// Fault sites and cancellation live on the shared budget only.
  Status OnTriggerBatch() {
    return shared_ != nullptr ? shared_->OnTriggerBatch(what_)
                              : Status::OK();
  }
  Status OnPoolTask() {
    return shared_ != nullptr ? shared_->OnPoolTask(what_) : Status::OK();
  }
  Cancellation* cancellation() const {
    return shared_ != nullptr ? shared_->cancellation() : nullptr;
  }

  /// Steps this run performed (local count, shared-budget agnostic).
  size_t steps() const { return local_.steps(); }
  BudgetLimit tripped() const {
    BudgetLimit limit = local_.tripped();
    if (limit == BudgetLimit::kNone && shared_ != nullptr) {
      limit = shared_->tripped();
    }
    return limit;
  }
  bool exhausted() const { return tripped() != BudgetLimit::kNone; }
  /// This run's local usage (what the journal's budget event reports).
  std::string UsageString() const { return local_.UsageString(); }

 private:
  Budget local_;
  Budget* shared_;
  const char* what_;
  const char* hint_;
};

}  // namespace qimap

#endif  // QIMAP_BASE_BUDGET_H_
