#ifndef QIMAP_BASE_FAULT_H_
#define QIMAP_BASE_FAULT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/status.h"

namespace qimap {

/// Deterministic fault-injection sites inside the chase and inversion
/// pipelines. A `FaultPlan` names one site and an ordinal; the Nth time
/// execution passes that site the attached `Budget` trips (or cancels its
/// token), letting tests drive exhaustion and mid-parallel-wave
/// cancellation paths on demand instead of hoping a tight limit lands in
/// the right place.
enum class FaultSite : uint8_t {
  kNone = 0,
  /// A memory-accounting checkpoint: every `Budget::ChargeMemory` call
  /// (the engines charge one per stored fact / copied branch).
  kAllocCheckpoint,
  /// One per dependency whose trigger batch is consumed by a chase round.
  kTriggerBatch,
  /// One per task handed to the thread pool during trigger collection or
  /// a disjunctive wave.
  kPoolTask,
};

/// Short name used in plan strings and messages: "alloc", "batch", "task"
/// ("none" for kNone).
const char* FaultSiteName(FaultSite site);

/// A parsed fault plan: "fail the `nth` pass through `site`". Inactive by
/// default (site = kNone or nth = 0). The optional `cancel` action makes
/// the fault cancel the budget's `Cancellation` token instead of tripping
/// the budget directly — the pipeline then winds down at its next
/// cooperative check, exactly like an external cancel.
struct FaultPlan {
  FaultSite site = FaultSite::kNone;
  /// 1-based ordinal of the site pass that faults; 0 disables the plan.
  uint64_t nth = 0;
  bool cancel = false;

  bool active() const { return site != FaultSite::kNone && nth != 0; }

  /// Renders "alloc:3", "task:5:cancel", or "none" when inactive.
  std::string ToString() const;

  /// Parses "<site>:<nth>[:cancel]" with site in {alloc, batch, task},
  /// e.g. "alloc:3", "batch:1", "task:5:cancel". InvalidArgument on
  /// anything else.
  static Result<FaultPlan> Parse(std::string_view text);

  /// Reads `QIMAP_FAULT_PLAN` from the environment; inactive plan when
  /// the variable is unset, empty, or unparsable (a bad plan must never
  /// turn a production run into a crash).
  static FaultPlan FromEnv();
};

}  // namespace qimap

#endif  // QIMAP_BASE_FAULT_H_
