#ifndef QIMAP_BASE_VERSION_H_
#define QIMAP_BASE_VERSION_H_

// Library version, bumped per release-worthy change set.
#define QIMAP_VERSION_MAJOR 0
#define QIMAP_VERSION_MINOR 3
#define QIMAP_VERSION_PATCH 0

namespace qimap {

/// "major.minor.patch", e.g. "0.3.0" (`qimap_cli --version`).
inline const char* VersionString() { return "0.3.0"; }

}  // namespace qimap

#endif  // QIMAP_BASE_VERSION_H_
