#ifndef QIMAP_WORKLOAD_RANDOM_MAPPINGS_H_
#define QIMAP_WORKLOAD_RANDOM_MAPPINGS_H_

#include <cstddef>

#include "base/rng.h"
#include "dependency/schema_mapping.h"
#include "relational/instance.h"

namespace qimap {

/// Shape of randomly generated schema mappings. Defaults produce small LAV
/// mappings of the kind Proposition 3.11 speaks about.
struct RandomMappingConfig {
  size_t num_source_relations = 3;
  size_t num_target_relations = 3;
  uint32_t max_arity = 2;
  size_t num_tgds = 3;
  size_t max_lhs_atoms = 1;         ///< 1 keeps the mapping LAV.
  size_t max_rhs_atoms = 2;
  size_t max_existential_vars = 1;  ///< 0 keeps the mapping full.
};

/// Generates a random schema mapping with relation names `S1..`/`T1..`.
/// Deterministic in the RNG state.
SchemaMapping RandomMapping(Rng* rng, const RandomMappingConfig& config);

/// Convenience: a random LAV mapping (single-atom lhs).
SchemaMapping RandomLavMapping(Rng* rng, size_t num_tgds = 3);

/// A random LAV mapping shaped by `config`. Every field is honored except
/// `max_lhs_atoms`, which the LAV invariant pins to 1 — in particular
/// `config.num_tgds` decides the dependency count, exactly like
/// `RandomMapping`.
SchemaMapping RandomLavMapping(Rng* rng, const RandomMappingConfig& config);

/// Convenience: a random full mapping (no existential variables).
SchemaMapping RandomFullMapping(Rng* rng, size_t num_tgds = 3);

/// A random full mapping shaped by `config`. Every field is honored
/// except `max_existential_vars`, which the full invariant pins to 0.
SchemaMapping RandomFullMapping(Rng* rng, const RandomMappingConfig& config);

/// Generates a random mapping between two *given* schemas (e.g. to chain
/// mappings for composition sweeps: the second hop's source is the first
/// hop's target). Only the dependency-shape fields of `config` apply.
SchemaMapping RandomMappingBetween(SchemaPtr source, SchemaPtr target,
                                   Rng* rng,
                                   const RandomMappingConfig& config);

/// A random ground instance over the schema with `num_facts` distinct
/// facts (fewer if the space is smaller) over the given constant domain.
Instance RandomGroundInstance(SchemaPtr schema,
                              const std::vector<Value>& domain,
                              size_t num_facts, Rng* rng);

}  // namespace qimap

#endif  // QIMAP_WORKLOAD_RANDOM_MAPPINGS_H_
