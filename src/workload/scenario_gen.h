#ifndef QIMAP_WORKLOAD_SCENARIO_GEN_H_
#define QIMAP_WORKLOAD_SCENARIO_GEN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "base/rng.h"
#include "base/status.h"
#include "dependency/schema_mapping.h"
#include "relational/instance.h"

namespace qimap {

/// The mapping classes the paper distinguishes (Section 3), as generator
/// families: every emitted dependency set satisfies the family's
/// structural invariant by construction (asserted by scenario_gen_test).
enum class ScenarioFamily : uint8_t {
  kLav = 0,    ///< single-atom lhs
  kGav = 1,    ///< full with a single-atom rhs
  kFull = 2,   ///< no existential variables
  kMixed = 3,  ///< unconstrained joins and existentials
};

/// How the lhs atoms of one dependency share variables.
enum class BodyTopology : uint8_t {
  kChain = 0,  ///< A1(x0,x1) & A2(x1,x2) & ... — adjacent atoms linked
  kStar = 1,   ///< A1(h,x1) & A2(h,x2) & ... — all atoms share a hub
  kCycle = 2,  ///< a chain whose last atom links back to x0
};

const char* ScenarioFamilyName(ScenarioFamily family);
const char* BodyTopologyName(BodyTopology topology);

/// Strict name lookup ("lav", "gav", "full", "mixed"); InvalidArgument on
/// anything else — a typo in a CI invocation must fail the leg.
Result<ScenarioFamily> ParseScenarioFamily(std::string_view name);
/// Strict name lookup ("chain", "star", "cycle").
Result<BodyTopology> ParseBodyTopology(std::string_view name);

/// Shape of one generated scenario. Every knob is honored for every
/// family except where the family invariant overrides it (LAV pins the
/// body to one atom; GAV pins the head to one atom and full families
/// drop existentials).
struct ScenarioConfig {
  ScenarioFamily family = ScenarioFamily::kLav;
  BodyTopology topology = BodyTopology::kChain;
  size_t num_source_relations = 4;
  size_t num_target_relations = 4;
  uint32_t max_arity = 3;  ///< relation arities are drawn from [1, max]
  size_t num_tgds = 4;
  size_t body_atoms = 3;  ///< lhs atoms per dependency (non-LAV families)
  size_t fan_out = 2;     ///< rhs atoms per dependency
  /// Percentage chance that a free argument position reuses an existing
  /// body variable instead of minting a fresh one (the topology's link
  /// positions are always shared regardless).
  uint32_t shared_var_density = 60;
  size_t max_existential_vars = 2;  ///< LAV/mixed families only
};

/// One generated case: a mapping plus a matched source instance whose
/// facts are lhs instantiations of the mapping's own dependencies, so the
/// chase has real work on every case.
struct Scenario {
  SchemaMapping mapping;
  /// Starts over an empty schema; re-bound to the generated source schema.
  Instance source{std::make_shared<const Schema>()};
  ScenarioConfig config;
  uint64_t seed = 0;
};

/// Generates the scenario for `(config, seed)`. Deterministic: the same
/// pair yields byte-identical renderings (mapping and instance), across
/// runs and platforms — the seed contract docs/dsl.md documents and the
/// committed golden fingerprints pin. `num_facts` scales the matched
/// instance; generation is O(num_facts), so corpora of millions of facts
/// are fine (facts are sampled directly, never enumerated).
Scenario GenerateScenario(const ScenarioConfig& config, uint64_t seed,
                          size_t num_facts);

/// Renders the scenario as one self-contained corpus case file (the
/// format qimap_gen writes and qimap_cli --case reads; see docs/dsl.md).
std::string CorpusCaseToString(const Scenario& scenario);

/// Parses a corpus case file back into a scenario. The header lines
/// (family/topology/seed) are restored when present; the mapping and
/// instance sections are required.
Result<Scenario> ParseCorpusCase(std::string_view text);

}  // namespace qimap

#endif  // QIMAP_WORKLOAD_SCENARIO_GEN_H_
