#include "workload/scenario_gen.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "dependency/parser.h"
#include "relational/atom.h"
#include "relational/homomorphism.h"

namespace qimap {

const char* ScenarioFamilyName(ScenarioFamily family) {
  switch (family) {
    case ScenarioFamily::kLav:
      return "lav";
    case ScenarioFamily::kGav:
      return "gav";
    case ScenarioFamily::kFull:
      return "full";
    case ScenarioFamily::kMixed:
      return "mixed";
  }
  return "unknown";
}

const char* BodyTopologyName(BodyTopology topology) {
  switch (topology) {
    case BodyTopology::kChain:
      return "chain";
    case BodyTopology::kStar:
      return "star";
    case BodyTopology::kCycle:
      return "cycle";
  }
  return "unknown";
}

Result<ScenarioFamily> ParseScenarioFamily(std::string_view name) {
  for (ScenarioFamily family :
       {ScenarioFamily::kLav, ScenarioFamily::kGav, ScenarioFamily::kFull,
        ScenarioFamily::kMixed}) {
    if (name == ScenarioFamilyName(family)) return family;
  }
  return Status::InvalidArgument("unknown scenario family '" +
                                 std::string(name) +
                                 "' (lav|gav|full|mixed)");
}

Result<BodyTopology> ParseBodyTopology(std::string_view name) {
  for (BodyTopology topology :
       {BodyTopology::kChain, BodyTopology::kStar, BodyTopology::kCycle}) {
    if (name == BodyTopologyName(topology)) return topology;
  }
  return Status::InvalidArgument("unknown body topology '" +
                                 std::string(name) + "' (chain|star|cycle)");
}

namespace {

Value BodyVar(size_t i) {
  return Value::MakeVariable("x" + std::to_string(i + 1));
}

Value ExistentialVar(size_t i) {
  return Value::MakeVariable("y" + std::to_string(i + 1));
}

SchemaPtr RandomScenarioSchema(Rng* rng, const char* prefix, size_t count,
                               uint32_t max_arity) {
  Schema schema;
  for (size_t i = 0; i < count; ++i) {
    uint32_t arity =
        static_cast<uint32_t>(rng->UniformInt(1, static_cast<int>(max_arity)));
    Result<RelationId> id =
        schema.AddRelation(prefix + std::to_string(i + 1), arity);
    (void)id;
  }
  return std::make_shared<const Schema>(std::move(schema));
}

// The effective knobs after the family invariant is applied.
struct FamilyShape {
  size_t body_atoms;
  size_t fan_out;
  size_t max_existential_vars;
};

FamilyShape ShapeFor(const ScenarioConfig& config) {
  FamilyShape shape;
  shape.body_atoms = std::max<size_t>(1, config.body_atoms);
  shape.fan_out = std::max<size_t>(1, config.fan_out);
  shape.max_existential_vars = config.max_existential_vars;
  switch (config.family) {
    case ScenarioFamily::kLav:
      shape.body_atoms = 1;  // single-atom lhs
      break;
    case ScenarioFamily::kGav:
      shape.fan_out = 1;  // single-atom rhs ...
      shape.max_existential_vars = 0;  // ... and full
      break;
    case ScenarioFamily::kFull:
      shape.max_existential_vars = 0;
      break;
    case ScenarioFamily::kMixed:
      break;
  }
  return shape;
}

// Builds one lhs in the requested topology over a growing pool of body
// variables. `pool` receives every variable minted; link positions wire
// the topology, the remaining positions reuse the pool with probability
// `density`% (shared-variable density) and mint fresh variables otherwise.
Conjunction RandomBody(const SchemaMapping& m, Rng* rng,
                       const ScenarioConfig& config, size_t body_atoms,
                       std::vector<Value>* pool) {
  Conjunction body;
  auto fresh = [pool]() {
    Value v = BodyVar(pool->size());
    pool->push_back(v);
    return v;
  };
  auto reuse_or_fresh = [&]() {
    if (!pool->empty() && rng->Chance(config.shared_var_density, 100)) {
      return (*pool)[rng->Uniform(pool->size())];
    }
    return fresh();
  };
  // The topology's backbone variables. `link_in` enters each atom;
  // `link_out` is where the next atom picks up.
  Value origin = fresh();  // x1: chain head / star hub / cycle anchor
  Value link_in = origin;
  for (size_t a = 0; a < body_atoms; ++a) {
    RelationId r = static_cast<RelationId>(rng->Uniform(m.source->size()));
    uint32_t arity = m.source->relation(r).arity;
    bool last = a + 1 == body_atoms;
    // An arity-1 atom has a slot for link_in only: the chain must pass
    // *through* it (link_out = link_in) or the atoms after it would start
    // a disconnected component.
    Value link_out;
    switch (config.topology) {
      case BodyTopology::kChain:
        link_out = (last || arity == 1) ? link_in : fresh();
        break;
      case BodyTopology::kStar:
        link_in = origin;  // every atom touches the hub
        link_out = arity > 1 ? fresh() : origin;
        break;
      case BodyTopology::kCycle:
        if (arity == 1) {
          link_out = link_in;  // cycle degrades to a through-link here
        } else {
          link_out = last ? origin : fresh();
        }
        break;
    }
    Atom atom{r, {}};
    for (uint32_t i = 0; i < arity; ++i) {
      if (i == 0) {
        atom.args.push_back(link_in);
      } else if (i == arity - 1 && arity > 1) {
        atom.args.push_back(link_out);
      } else {
        atom.args.push_back(reuse_or_fresh());
      }
    }
    body.push_back(std::move(atom));
    link_in = link_out;
  }
  // Arity-1 atoms have no slot for their link variable, so a minted
  // link_out can go unused. Re-derive the pool from the atoms actually
  // built: the rhs must only draw variables the lhs really binds, or a
  // full mapping would grow accidental existentials.
  *pool = VariablesOf(body);
  return body;
}

// Builds `fan_out` rhs atoms over the body variables plus a bounded pool
// of existentials. Kept structurally parallel to
// random_mappings.cc::AppendRandomTgds so the two generators stay one
// idiom.
Conjunction RandomHead(const SchemaMapping& m, Rng* rng, size_t fan_out,
                       size_t max_existential_vars,
                       const std::vector<Value>& body_pool) {
  Conjunction head;
  size_t existential_pool = 0;
  for (size_t a = 0; a < fan_out; ++a) {
    RelationId r = static_cast<RelationId>(rng->Uniform(m.target->size()));
    Atom atom{r, {}};
    uint32_t arity = m.target->relation(r).arity;
    for (uint32_t i = 0; i < arity; ++i) {
      bool use_existential = max_existential_vars > 0 && rng->Chance(1, 4);
      if (use_existential) {
        if (existential_pool < max_existential_vars && rng->Chance(1, 2)) {
          ++existential_pool;
        }
        if (existential_pool > 0) {
          atom.args.push_back(ExistentialVar(rng->Uniform(existential_pool)));
          continue;
        }
      }
      atom.args.push_back(body_pool[rng->Uniform(body_pool.size())]);
    }
    head.push_back(std::move(atom));
  }
  return head;
}

}  // namespace

Scenario GenerateScenario(const ScenarioConfig& config, uint64_t seed,
                          size_t num_facts) {
  Rng rng(seed);  // the Rng itself remaps the zero seed
  FamilyShape shape = ShapeFor(config);

  Scenario scenario;
  scenario.config = config;
  scenario.seed = seed;
  SchemaMapping& m = scenario.mapping;
  m.source = RandomScenarioSchema(&rng, "S",
                                  std::max<size_t>(1,
                                                   config.num_source_relations),
                                  std::max<uint32_t>(1, config.max_arity));
  m.target = RandomScenarioSchema(&rng, "T",
                                  std::max<size_t>(1,
                                                   config.num_target_relations),
                                  std::max<uint32_t>(1, config.max_arity));
  for (size_t t = 0; t < std::max<size_t>(1, config.num_tgds); ++t) {
    Tgd tgd;
    std::vector<Value> pool;
    tgd.lhs = RandomBody(m, &rng, config, shape.body_atoms, &pool);
    tgd.rhs = RandomHead(m, &rng, shape.fan_out,
                         shape.max_existential_vars, pool);
    m.tgds.push_back(std::move(tgd));
  }

  // Matched source instance: every fact batch instantiates the lhs of one
  // of the mapping's own dependencies with constants, so each batch is a
  // guaranteed trigger. Facts are sampled directly (never enumerated), so
  // the instance scales linearly to millions of facts. The constant
  // domain grows with the request to keep the fact space from saturating.
  Instance source(m.source);
  if (num_facts > 0 && !m.tgds.empty()) {
    size_t domain_size = std::max<size_t>(4, num_facts / 4);
    auto constant = [&](size_t i) {
      return Value::MakeConstant("c" + std::to_string(i + 1));
    };
    // Duplicate samples are possible; the attempt cap keeps generation
    // linear even when the requested size nears the fact space.
    size_t attempts = 4 * num_facts + 16;
    while (source.NumFacts() < num_facts && attempts-- > 0) {
      const Tgd& tgd = m.tgds[rng.Uniform(m.tgds.size())];
      Assignment assignment;
      for (const Value& v : VariablesOf(tgd.lhs)) {
        assignment.emplace(v, constant(rng.Uniform(domain_size)));
      }
      for (const Atom& atom : ApplyAssignmentToConjunction(tgd.lhs,
                                                           assignment)) {
        Status status = source.AddFact(atom.relation, atom.args);
        (void)status;
      }
    }
  }
  scenario.source = std::move(source);
  return scenario;
}

std::string CorpusCaseToString(const Scenario& scenario) {
  std::string out;
  out += "# qimap corpus case\n";
  out += "family: ";
  out += ScenarioFamilyName(scenario.config.family);
  out += "\ntopology: ";
  out += BodyTopologyName(scenario.config.topology);
  out += "\nseed: " + std::to_string(scenario.seed) + "\n";
  out += "source: " + scenario.mapping.source->ToString() + "\n";
  out += "target: " + scenario.mapping.target->ToString() + "\n";
  out += "tgds:\n" + scenario.mapping.ToString();
  out += "instance:\n";
  // Rendered-text order, not Facts() order: the canonical (relation,
  // tuple) order compares interned value ids, which depend on what the
  // process interned first. Sorting the printed lines keeps the corpus
  // bytes a pure function of the content, across runs and platforms.
  std::vector<std::string> lines;
  lines.reserve(scenario.source.NumFacts());
  for (const Fact& fact : scenario.source.Facts()) {
    lines.push_back(FactToString(*scenario.mapping.source, fact));
  }
  std::sort(lines.begin(), lines.end());
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

Result<Scenario> ParseCorpusCase(std::string_view text) {
  Scenario scenario;
  std::string source_decl, target_decl, tgds_text, instance_text;
  enum class Section { kHeader, kTgds, kInstance } section = Section::kHeader;
  size_t pos = 0;
  auto strip = [](std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
      s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                          s.back() == '\r')) {
      s.remove_suffix(1);
    }
    return s;
  };
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = strip(text.substr(pos, end - pos));
    pos = end + 1;
    if (line.empty() || line.front() == '#') {
      if (pos > text.size()) break;
      continue;
    }
    if (section == Section::kHeader) {
      auto value_of = [&](std::string_view key) -> std::string_view {
        return strip(line.substr(key.size()));
      };
      if (line.rfind("family:", 0) == 0) {
        QIMAP_ASSIGN_OR_RETURN(scenario.config.family,
                               ParseScenarioFamily(value_of("family:")));
      } else if (line.rfind("topology:", 0) == 0) {
        QIMAP_ASSIGN_OR_RETURN(scenario.config.topology,
                               ParseBodyTopology(value_of("topology:")));
      } else if (line.rfind("seed:", 0) == 0) {
        std::string seed_text(value_of("seed:"));
        char* parse_end = nullptr;
        scenario.seed = std::strtoull(seed_text.c_str(), &parse_end, 10);
        if (parse_end == seed_text.c_str() || *parse_end != '\0') {
          return Status::InvalidArgument("corpus case: malformed seed '" +
                                         seed_text + "'");
        }
      } else if (line.rfind("source:", 0) == 0) {
        source_decl = std::string(value_of("source:"));
      } else if (line.rfind("target:", 0) == 0) {
        target_decl = std::string(value_of("target:"));
      } else if (line == "tgds:") {
        section = Section::kTgds;
      } else {
        return Status::InvalidArgument("corpus case: unexpected header '" +
                                       std::string(line) + "'");
      }
    } else if (section == Section::kTgds) {
      if (line == "instance:") {
        section = Section::kInstance;
      } else {
        tgds_text += std::string(line) + "\n";
      }
    } else {
      if (!instance_text.empty()) instance_text += ", ";
      instance_text += std::string(line);
    }
    if (pos > text.size()) break;
  }
  if (source_decl.empty() || target_decl.empty()) {
    return Status::InvalidArgument(
        "corpus case: missing source:/target: declarations");
  }
  if (section == Section::kHeader) {
    return Status::InvalidArgument("corpus case: missing tgds: section");
  }
  QIMAP_ASSIGN_OR_RETURN(scenario.mapping,
                         ParseMapping(source_decl, target_decl, tgds_text));
  QIMAP_ASSIGN_OR_RETURN(
      scenario.source,
      ParseInstance(scenario.mapping.source, instance_text));
  return scenario;
}

}  // namespace qimap
