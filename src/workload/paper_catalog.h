#ifndef QIMAP_WORKLOAD_PAPER_CATALOG_H_
#define QIMAP_WORKLOAD_PAPER_CATALOG_H_

#include <string>
#include <utility>
#include <vector>

#include "dependency/schema_mapping.h"

namespace qimap {
namespace catalog {

/// Every named schema mapping of the paper, built exactly as printed.
/// These drive the per-experiment benches (DESIGN.md, Section 4) and the
/// integration tests.

/// Section 1, Projection: `P(x,y) -> Q(x)`.
SchemaMapping Projection();
/// Section 1, Union: `P(x) -> S(x); Q(x) -> S(x)`.
SchemaMapping Union();
/// Section 1 / Examples 3.10 and 6.1, Decomposition:
/// `P(x,y,z) -> Q(x,y) & R(y,z)`.
SchemaMapping Decomposition();
/// Proposition 3.12: `E(x,z) & E(z,y) -> F(x,y) & M(z)` — a full s-t tgd
/// with no quasi-inverse.
SchemaMapping Prop312();
/// Example 4.5: the four-tgd mapping over `P,U,T,R -> S,Q`.
SchemaMapping Example45();
/// Theorem 4.8 (necessity of constants):
/// `P(x,y) -> exists z: Q(x,z) & Q(z,y)`.
SchemaMapping Thm48();
/// Theorem 4.9 (necessity of inequalities): the full LAV mapping over
/// `P,T -> P',Q,T'`.
SchemaMapping Thm49();
/// Theorem 4.10 (necessity of disjunctions): the eight-tgd full mapping
/// over `P1..P4 -> S1,S2,R13,R14,R23,R24`.
SchemaMapping Thm410();
/// Theorem 4.11 (necessity of existential quantifiers):
/// `P(x,y) -> R(x); P(x,x) -> S(x)`.
SchemaMapping Thm411();
/// Example 5.4: the three-tgd mapping over `R -> Q,S,U`.
SchemaMapping Example54();

/// Paper-stated reverse mappings (each over the schemas of the
/// corresponding forward mapping, which must be passed in).

/// `Q(x) -> exists y: P(x,y)` (Section 1).
ReverseMapping ProjectionQuasiInverse(const SchemaMapping& m);
/// `S(x) -> P(x) | Q(x)` (Section 1).
ReverseMapping UnionQuasiInverseDisjunctive(const SchemaMapping& m);
/// `S(x) -> P(x)` (Section 1; quasi-inverses are not unique).
ReverseMapping UnionQuasiInverseP(const SchemaMapping& m);
/// `S(x) -> Q(x)` (Section 1).
ReverseMapping UnionQuasiInverseQ(const SchemaMapping& m);
/// `S(x) -> P(x) & Q(x)` (Section 1).
ReverseMapping UnionQuasiInverseBoth(const SchemaMapping& m);
/// `Q(x,y) & R(y,z) -> P(x,y,z)` — the paper's `M'` (Example 3.10).
ReverseMapping DecompositionQuasiInverseJoin(const SchemaMapping& m);
/// `Q(x,y) -> exists z: P(x,y,z); R(y,z) -> exists x: P(x,y,z)` — the
/// paper's `M''` (Example 3.10).
ReverseMapping DecompositionQuasiInverseSplit(const SchemaMapping& m);
/// `Q(x,z) & Q(z,y) & Constant(x) & Constant(y) -> P(x,y)`
/// (Theorem 4.8).
ReverseMapping Thm48Inverse(const SchemaMapping& m);
/// Dependencies (1) and (2) of Example 5.4 — the weakest inverse.
ReverseMapping Example54Inverse(const SchemaMapping& m);

/// All forward mappings with their paper names, for sweeps.
std::vector<std::pair<std::string, SchemaMapping>> AllMappings();

/// The ground instance `I = { P(a,b,c), P(a',b,c') }` of Figure 1.
Instance Fig1Instance(const SchemaMapping& decomposition);

}  // namespace catalog
}  // namespace qimap

#endif  // QIMAP_WORKLOAD_PAPER_CATALOG_H_
