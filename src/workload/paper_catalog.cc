#include "workload/paper_catalog.h"

#include "dependency/parser.h"

namespace qimap {
namespace catalog {

SchemaMapping Projection() {
  return MustParseMapping("P/2", "Q/1", "P(x,y) -> Q(x)");
}

SchemaMapping Union() {
  return MustParseMapping("P/1, Q/1", "S/1", "P(x) -> S(x); Q(x) -> S(x)");
}

SchemaMapping Decomposition() {
  return MustParseMapping("P/3", "Q/2, R/2",
                          "P(x,y,z) -> Q(x,y) & R(y,z)");
}

SchemaMapping Prop312() {
  return MustParseMapping("E/2", "F/2, M/1",
                          "E(x,z) & E(z,y) -> F(x,y) & M(z)");
}

SchemaMapping Example45() {
  return MustParseMapping(
      "P/3, U/1, T/2, R/3", "S/3, Q/2",
      "P(x1,x2,x3) -> exists y: S(x1,x2,y) & Q(y,y);"
      "U(x1) -> exists y: S(x1,x1,y) & Q(y,y) & Q(x1,y);"
      "T(x3,x4) -> S(x4,x4,x3);"
      "R(x1,x2,x4) -> Q(x1,x2)");
}

SchemaMapping Thm48() {
  return MustParseMapping("P/2", "Q/2",
                          "P(x,y) -> exists z: Q(x,z) & Q(z,y)");
}

SchemaMapping Thm49() {
  return MustParseMapping("P/2, T/1", "P'/2, Q/1, T'/1",
                          "P(x,y) -> P'(x,y);"
                          "P(x,x) -> Q(x);"
                          "T(x) -> T'(x);"
                          "T(x) -> P'(x,x)");
}

SchemaMapping Thm410() {
  return MustParseMapping(
      "P1/1, P2/1, P3/1, P4/1", "S1/1, S2/1, R13/1, R14/1, R23/1, R24/1",
      "P1(x) -> S1(x); P2(x) -> S1(x); P3(x) -> S2(x); P4(x) -> S2(x);"
      "P1(x) & P3(x) -> R13(x);"
      "P1(x) & P4(x) -> R14(x);"
      "P2(x) & P3(x) -> R23(x);"
      "P2(x) & P4(x) -> R24(x)");
}

SchemaMapping Thm411() {
  return MustParseMapping("P/2", "R/1, S/1", "P(x,y) -> R(x); P(x,x) -> S(x)");
}

SchemaMapping Example54() {
  return MustParseMapping("R/2", "Q/2, S/3, U/1",
                          "R(x1,x2) & R(x2,x1) -> exists y: Q(x1,y);"
                          "R(x1,x2) -> exists y: S(x1,x2,y);"
                          "R(x1,x1) -> U(x1)");
}

ReverseMapping ProjectionQuasiInverse(const SchemaMapping& m) {
  return MustParseReverseMapping(m, "Q(x) -> exists y: P(x,y)");
}

ReverseMapping UnionQuasiInverseDisjunctive(const SchemaMapping& m) {
  return MustParseReverseMapping(m, "S(x) -> P(x) | Q(x)");
}

ReverseMapping UnionQuasiInverseP(const SchemaMapping& m) {
  return MustParseReverseMapping(m, "S(x) -> P(x)");
}

ReverseMapping UnionQuasiInverseQ(const SchemaMapping& m) {
  return MustParseReverseMapping(m, "S(x) -> Q(x)");
}

ReverseMapping UnionQuasiInverseBoth(const SchemaMapping& m) {
  return MustParseReverseMapping(m, "S(x) -> P(x) & Q(x)");
}

ReverseMapping DecompositionQuasiInverseJoin(const SchemaMapping& m) {
  return MustParseReverseMapping(m, "Q(x,y) & R(y,z) -> P(x,y,z)");
}

ReverseMapping DecompositionQuasiInverseSplit(const SchemaMapping& m) {
  return MustParseReverseMapping(m,
                                 "Q(x,y) -> exists z: P(x,y,z);"
                                 "R(y,z) -> exists x: P(x,y,z)");
}

ReverseMapping Thm48Inverse(const SchemaMapping& m) {
  return MustParseReverseMapping(
      m, "Q(x,z) & Q(z,y) & Constant(x) & Constant(y) -> P(x,y)");
}

ReverseMapping Example54Inverse(const SchemaMapping& m) {
  return MustParseReverseMapping(
      m,
      "Q(x1,y1) & S(x1,x1,y2) & U(x1) & Constant(x1) -> R(x1,x1);"
      "S(x1,x2,y) & Constant(x1) & Constant(x2) & x1 != x2 -> R(x1,x2)");
}

std::vector<std::pair<std::string, SchemaMapping>> AllMappings() {
  std::vector<std::pair<std::string, SchemaMapping>> out;
  out.emplace_back("Projection", Projection());
  out.emplace_back("Union", Union());
  out.emplace_back("Decomposition", Decomposition());
  out.emplace_back("Prop3.12", Prop312());
  out.emplace_back("Example4.5", Example45());
  out.emplace_back("Thm4.8", Thm48());
  out.emplace_back("Thm4.9", Thm49());
  out.emplace_back("Thm4.10", Thm410());
  out.emplace_back("Thm4.11", Thm411());
  out.emplace_back("Example5.4", Example54());
  return out;
}

Instance Fig1Instance(const SchemaMapping& decomposition) {
  return MustParseInstance(decomposition.source, "P(a,b,c), P(a',b,c')");
}

}  // namespace catalog
}  // namespace qimap
