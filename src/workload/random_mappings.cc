#include "workload/random_mappings.h"

#include <string>

#include "relational/instance_enum.h"

namespace qimap {
namespace {

Value VarX(size_t i) {
  return Value::MakeVariable("x" + std::to_string(i + 1));
}
Value VarY(size_t i) {
  return Value::MakeVariable("y" + std::to_string(i + 1));
}

SchemaPtr RandomSchema(Rng* rng, const std::string& prefix, size_t count,
                       uint32_t max_arity) {
  Schema schema;
  for (size_t i = 0; i < count; ++i) {
    uint32_t arity =
        static_cast<uint32_t>(rng->UniformInt(1, static_cast<int>(max_arity)));
    Result<RelationId> id =
        schema.AddRelation(prefix + std::to_string(i + 1), arity);
    (void)id;
  }
  return std::make_shared<const Schema>(std::move(schema));
}

}  // namespace

namespace {

void AppendRandomTgds(SchemaMapping* m, Rng* rng,
                      const RandomMappingConfig& config);

}  // namespace

SchemaMapping RandomMapping(Rng* rng, const RandomMappingConfig& config) {
  SchemaMapping m;
  m.source = RandomSchema(rng, "S", config.num_source_relations,
                          config.max_arity);
  m.target = RandomSchema(rng, "T", config.num_target_relations,
                          config.max_arity);
  AppendRandomTgds(&m, rng, config);
  return m;
}

SchemaMapping RandomMappingBetween(SchemaPtr source, SchemaPtr target,
                                   Rng* rng,
                                   const RandomMappingConfig& config) {
  SchemaMapping m;
  m.source = std::move(source);
  m.target = std::move(target);
  AppendRandomTgds(&m, rng, config);
  return m;
}

namespace {

void AppendRandomTgds(SchemaMapping* mp, Rng* rng,
                      const RandomMappingConfig& config) {
  SchemaMapping& m = *mp;
  for (size_t t = 0; t < config.num_tgds; ++t) {
    Tgd tgd;
    // Lhs: a few source atoms over a shared pool of x-variables. The pool
    // grows with the lhs width so joins are possible but not forced.
    size_t lhs_atoms = static_cast<size_t>(
        rng->UniformInt(1, static_cast<int>(config.max_lhs_atoms)));
    size_t var_pool = 0;
    for (size_t a = 0; a < lhs_atoms; ++a) {
      RelationId r = static_cast<RelationId>(
          rng->Uniform(m.source->size()));
      Atom atom{r, {}};
      uint32_t arity = m.source->relation(r).arity;
      for (uint32_t i = 0; i < arity; ++i) {
        // Reuse an existing variable 60% of the time once any exist.
        if (var_pool > 0 && rng->Chance(3, 5)) {
          atom.args.push_back(VarX(rng->Uniform(var_pool)));
        } else {
          atom.args.push_back(VarX(var_pool++));
        }
      }
      tgd.lhs.push_back(std::move(atom));
    }
    // Rhs: target atoms over the lhs variables plus a small existential
    // pool.
    size_t rhs_atoms = static_cast<size_t>(
        rng->UniformInt(1, static_cast<int>(config.max_rhs_atoms)));
    size_t existential_pool = 0;
    for (size_t a = 0; a < rhs_atoms; ++a) {
      RelationId r = static_cast<RelationId>(
          rng->Uniform(m.target->size()));
      Atom atom{r, {}};
      uint32_t arity = m.target->relation(r).arity;
      for (uint32_t i = 0; i < arity; ++i) {
        bool use_existential =
            config.max_existential_vars > 0 && rng->Chance(1, 4);
        if (use_existential) {
          if (existential_pool < config.max_existential_vars &&
              rng->Chance(1, 2)) {
            ++existential_pool;
          }
          if (existential_pool > 0) {
            atom.args.push_back(VarY(rng->Uniform(existential_pool)));
            continue;
          }
        }
        atom.args.push_back(VarX(rng->Uniform(var_pool)));
      }
      tgd.rhs.push_back(std::move(atom));
    }
    m.tgds.push_back(std::move(tgd));
  }
}

}  // namespace

SchemaMapping RandomLavMapping(Rng* rng, size_t num_tgds) {
  RandomMappingConfig config;
  config.num_tgds = num_tgds;
  return RandomLavMapping(rng, config);
}

SchemaMapping RandomLavMapping(Rng* rng, const RandomMappingConfig& config) {
  RandomMappingConfig lav = config;
  lav.max_lhs_atoms = 1;  // the LAV invariant; everything else is honored
  return RandomMapping(rng, lav);
}

SchemaMapping RandomFullMapping(Rng* rng, size_t num_tgds) {
  RandomMappingConfig config;
  config.max_lhs_atoms = 2;
  config.num_tgds = num_tgds;
  return RandomFullMapping(rng, config);
}

SchemaMapping RandomFullMapping(Rng* rng, const RandomMappingConfig& config) {
  RandomMappingConfig full = config;
  full.max_existential_vars = 0;  // the full invariant
  return RandomMapping(rng, full);
}

Instance RandomGroundInstance(SchemaPtr schema,
                              const std::vector<Value>& domain,
                              size_t num_facts, Rng* rng) {
  std::vector<Fact> all_facts = AllFactsOver(*schema, domain);
  Instance out(schema);
  if (all_facts.empty()) return out;
  for (size_t i = 0; i < num_facts; ++i) {
    const Fact& fact = all_facts[rng->Uniform(all_facts.size())];
    Status status = out.AddFact(fact.relation, fact.tuple);
    (void)status;
  }
  return out;
}

}  // namespace qimap
