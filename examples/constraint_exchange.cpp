// Data exchange with target constraints (the full setting of the
// paper's foundation [4]): a registrar migrates enrollment records into
// a curriculum schema that carries its own integrity constraints — a
// transitive prerequisite closure (target tgd) and a single-advisor key
// (egd). The chase resolves invented nulls against the constraints, and
// inconsistent sources are rejected outright.
//
// Build & run:  ./build/examples/constraint_exchange

#include <cstdio>

#include "chase/target_chase.h"
#include "core/weak_acyclicity.h"
#include "dependency/parser.h"

using namespace qimap;

namespace {

void Exchange(const SchemaMapping& m, const TargetConstraints& constraints,
              const char* label, const Instance& source) {
  std::printf("---- %s ----\nsource: %s\n", label,
              source.ToString().c_str());
  Result<TargetChaseResult> result =
      ChaseWithTargetConstraints(source, m, constraints);
  if (!result.ok()) {
    std::printf("chase error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (result->failed) {
    std::printf("NO SOLUTION: the target constraints are violated "
                "(chase failure after %zu steps)\n\n",
                result->steps);
    return;
  }
  std::printf("solution (%zu chase steps): %s\n\n", result->steps,
              result->solution.ToString().c_str());
}

}  // namespace

int main() {
  // Source: raw enrollment feed. Target: curriculum schema with its own
  // constraints.
  SchemaMapping m = MustParseMapping(
      "Takes/2, PrereqFeed/2",
      "Enrolled/2, Prereq/2, Advisor/2",
      "Takes(student, course) -> Enrolled(student, course);"
      "Takes(student, course) -> exists a: Advisor(student, a);"
      "PrereqFeed(c1, c2) -> Prereq(c1, c2)");
  TargetConstraints constraints = MustParseTargetConstraints(
      *m.target,
      "Prereq(c1, c2) & Prereq(c2, c3) -> Prereq(c1, c3)   # closure\n"
      "Advisor(s, a) & Advisor(s, b) -> a = b              # key");

  std::printf("Sigma:\n%s", m.ToString().c_str());
  std::printf("Sigma_t:\n%s", constraints.ToString(*m.target).c_str());
  std::printf("target tgds weakly acyclic (chase terminates): %s\n\n",
              IsWeaklyAcyclic(constraints.tgds, *m.target) ? "yes" : "no");

  // A clean source: the advisor nulls merge into one per student, the
  // prerequisite chain closes transitively.
  Instance clean = MustParseInstance(
      m.source,
      "Takes(ana, db2), Takes(ana, algo), "
      "PrereqFeed(intro, db1), PrereqFeed(db1, db2)");
  Exchange(m, constraints, "clean feed", clean);

  // A source that also declares advisors explicitly — extend the mapping
  // with a declared-advisor feed and watch the egd bind the invented
  // null to the declared constant.
  SchemaMapping declared = MustParseMapping(
      "Takes/2, PrereqFeed/2, Assigned/2",
      "Enrolled/2, Prereq/2, Advisor/2",
      "Takes(student, course) -> Enrolled(student, course);"
      "Takes(student, course) -> exists a: Advisor(student, a);"
      "PrereqFeed(c1, c2) -> Prereq(c1, c2);"
      "Assigned(student, prof) -> Advisor(student, prof)");
  Instance with_declared = MustParseInstance(
      declared.source, "Takes(ana, db2), Assigned(ana, dr_codd)");
  Exchange(declared, constraints, "declared advisor", with_declared);

  // An inconsistent source: two declared advisors for the same student
  // violate the key — the exchange has no solution.
  Instance conflicting = MustParseInstance(
      declared.source,
      "Takes(ana, db2), Assigned(ana, dr_codd), Assigned(ana, dr_date)");
  Exchange(declared, constraints, "conflicting advisors", conflicting);
  return 0;
}
