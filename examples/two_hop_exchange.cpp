// Two-hop data exchange: data flows through a middle schema
// (source -> staging -> warehouse). The composition operator collapses
// the two hops into one mapping, certain answers are computed over the
// exchanged data, and a quasi-inverse of the first hop recovers the
// source while preserving every certain answer.
//
// Build & run:  ./build/examples/two_hop_exchange

#include <cstdio>

#include "base/strings.h"
#include "chase/chase.h"
#include "core/certain_answers.h"
#include "core/forward_composition.h"
#include "core/quasi_inverse.h"
#include "core/soundness.h"
#include "dependency/parser.h"

using namespace qimap;

namespace {

std::string AnswersToString(const std::vector<Tuple>& answers) {
  std::vector<std::string> rows;
  for (const Tuple& t : answers) {
    std::vector<std::string> vals;
    for (const Value& v : t) vals.push_back(v.ToString());
    rows.push_back("(" + Join(vals, ",") + ")");
  }
  return rows.empty() ? "{}" : Join(rows, " ");
}

}  // namespace

int main() {
  // Hop 1 (full): ternary bookings split into two staging views.
  SchemaMapping hop1 = MustParseMapping(
      "Booking/3", "Leg/2, Seat/2",
      "Booking(flight, pax, seat) -> Leg(flight, pax) & Seat(pax, seat)");
  // Hop 2: the warehouse joins them back per-passenger.
  SchemaMapping hop2 = MustParseMapping(
      "Leg/2, Seat/2", "Manifest/3",
      "Leg(f, p) & Seat(p, s) -> Manifest(f, p, s)");

  std::printf("hop1:\n%shop2:\n%s\n", hop1.ToString().c_str(),
              hop2.ToString().c_str());

  // Collapse the pipeline with the composition operator.
  Result<SchemaMapping> direct = ComposeFullFirst(hop1, hop2);
  if (!direct.ok()) {
    std::printf("composition failed: %s\n",
                direct.status().ToString().c_str());
    return 1;
  }
  std::printf("hop1 ∘ hop2:\n%s\n", direct->ToString().c_str());

  Instance bookings = MustParseInstance(
      hop1.source,
      "Booking(f12, alice, s3a), Booking(f12, bob, s3b), "
      "Booking(f94, alice, s1c)");
  Instance staging = MustChase(bookings, hop1);
  Instance warehouse_via_staging = MustChase(staging, hop2);
  Instance warehouse_direct = MustChase(bookings, *direct);
  std::printf("warehouse (via staging): %s\n",
              warehouse_via_staging.ToString().c_str());
  std::printf("warehouse (composed):    %s\n\n",
              warehouse_direct.ToString().c_str());

  // Query the warehouse: which (flight, seat) pairs are certain?
  Result<ConjunctiveQuery> q =
      ParseQuery(*direct->target, "f, s", "Manifest(f, p, s)");
  if (!q.ok()) return 1;
  std::printf("certain flight/seat pairs: %s\n\n",
              AnswersToString(CertainAnswers(*q, warehouse_direct)).c_str());

  // Recover the bookings from the staging views with a quasi-inverse of
  // hop 1 and confirm no certain answer is lost on re-export.
  ReverseMapping recovery = MustQuasiInverse(hop1);
  Result<RoundTrip> trip = CheckRoundTrip(hop1, recovery, bookings);
  if (!trip.ok() || !trip->faithful) {
    std::printf("recovery not faithful\n");
    return 1;
  }
  const Instance& recovered = trip->recovered[*trip->faithful_witness];
  std::printf("recovered bookings (with placeholders where the split "
              "lost pairings):\n  %s\n",
              recovered.ToString().c_str());
  Instance warehouse_recovered =
      MustChase(MustChase(recovered, hop1), hop2);
  std::printf(
      "certain flight/seat pairs after recovery: %s\n",
      AnswersToString(CertainAnswers(*q, warehouse_recovered)).c_str());
  bool preserved = CertainAnswers(*q, warehouse_recovered) ==
                   CertainAnswers(*q, warehouse_direct);
  std::printf("certain answers preserved: %s\n", preserved ? "yes" : "no");
  return preserved ? 0 : 1;
}
