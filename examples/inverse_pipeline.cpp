// Invertibility analysis pipeline: given a schema mapping, decide whether
// an exact inverse is plausible (constant propagation + unique solutions),
// run the paper's Inverse algorithm when it is, and fall back to a
// quasi-inverse when it is not.
//
// Build & run:  ./build/examples/inverse_pipeline

#include <cstdio>

#include "core/framework.h"
#include "core/inverse.h"
#include "core/quasi_inverse.h"
#include "dependency/parser.h"
#include "relational/instance_enum.h"
#include "workload/paper_catalog.h"

using namespace qimap;

namespace {

void Analyze(const char* name, const SchemaMapping& m) {
  std::printf("==== %s ====\n%s", name, m.ToString().c_str());

  // Necessary condition 1: constant propagation (Proposition 5.3).
  Result<bool> propagates = HasConstantPropagation(m);
  if (!propagates.ok()) return;
  std::printf("constant propagation: %s\n", *propagates ? "holds" : "fails");

  // Necessary condition 2: unique solutions, checked on a bounded space.
  FrameworkChecker checker(m, {MakeDomain({"a", "b"}), 2});
  Result<BoundedCheckReport> unique = checker.CheckUniqueSolutions();
  if (!unique.ok()) return;
  std::printf("unique solutions (bounded): %s\n",
              unique->holds ? "holds" : "fails");

  if (*propagates && unique->holds) {
    ReverseMapping inverse = MustInverseAlgorithm(m);
    std::printf("Inverse algorithm output:\n%s", inverse.ToString().c_str());
    Result<BoundedCheckReport> verdict = checker.CheckGeneralizedInverse(
        inverse, EquivKind::kEquality, EquivKind::kEquality);
    if (verdict.ok()) {
      std::printf("verified as an inverse: %s\n\n",
                  verdict->holds ? "yes" : "no");
    }
    return;
  }

  std::printf("not invertible; falling back to QuasiInverse:\n");
  Result<ReverseMapping> quasi = QuasiInverse(m);
  if (!quasi.ok()) {
    std::printf("QuasiInverse failed: %s\n",
                quasi.status().ToString().c_str());
    return;
  }
  std::printf("%s", quasi->ToString().c_str());
  Result<BoundedCheckReport> verdict = checker.CheckGeneralizedInverse(
      *quasi, EquivKind::kSimM, EquivKind::kSimM);
  if (verdict.ok()) {
    std::printf("verified as a quasi-inverse: %s\n\n",
                verdict->holds ? "yes" : "no");
  }
}

}  // namespace

int main() {
  // Example 5.4's invertible mapping: the pipeline produces the paper's
  // exact inverse, dependencies (1) and (2).
  Analyze("Example 5.4 (invertible)", catalog::Example54());

  // The projection is not invertible (drops a column): the pipeline
  // reports the failed preconditions and produces a quasi-inverse.
  Analyze("Projection (not invertible)", catalog::Projection());

  // A custom mapping: employee records split into two views with a
  // repeated-key subtlety, as in Theorem 4.9.
  SchemaMapping custom = MustParseMapping(
      "Emp/2, Mgr/1", "Emp'/2, SelfMgr/1, Mgr'/1",
      "Emp(e,b) -> Emp'(e,b);"
      "Emp(e,e) -> SelfMgr(e);"
      "Mgr(e) -> Mgr'(e);"
      "Mgr(e) -> Emp'(e,e)");
  Analyze("Employee views (Theorem 4.9 shape)", custom);
  return 0;
}
