// Figure 1 walkthrough: the full bidirectional data exchange of the
// paper's Decomposition example, narrated step by step with both
// quasi-inverses M' (join rule) and M'' (split rules).
//
// Build & run:  ./build/examples/decomposition_roundtrip

#include <cstdio>

#include "chase/chase.h"
#include "chase/disjunctive_chase.h"
#include "core/soundness.h"
#include "relational/homomorphism.h"
#include "workload/paper_catalog.h"

using namespace qimap;

namespace {

void Narrate(const SchemaMapping& m, const ReverseMapping& reverse,
             const char* name, const Instance& ground) {
  std::printf("---- reverse mapping %s ----\n%s", name,
              reverse.ToString().c_str());
  Result<RoundTrip> trip = CheckRoundTrip(m, reverse, ground);
  if (!trip.ok()) {
    std::printf("round trip failed: %s\n",
                trip.status().ToString().c_str());
    return;
  }
  std::printf("U  = chase_Sigma(I)   = %s\n",
              trip->universal.ToString().c_str());
  for (size_t i = 0; i < trip->recovered.size(); ++i) {
    std::printf("V%zu = chase_Sigma'(U) = %s\n", i + 1,
                trip->recovered[i].ToString().c_str());
    std::printf("     chase_Sigma(V%zu) = %s\n", i + 1,
                trip->rechased[i].ToString().c_str());
    bool identical = trip->rechased[i] == trip->universal;
    bool equivalent =
        HomomorphicallyEquivalent(trip->rechased[i], trip->universal);
    std::printf("     vs U: %s\n",
                identical ? "identical"
                          : (equivalent ? "homomorphically equivalent"
                                        : "DIFFERENT"));
  }
  std::printf("sound: %s   faithful: %s\n\n", trip->sound ? "yes" : "no",
              trip->faithful ? "yes" : "no");
}

}  // namespace

int main() {
  SchemaMapping m = catalog::Decomposition();
  std::printf("Sigma:\n%s", m.ToString().c_str());
  Instance ground = catalog::Fig1Instance(m);
  std::printf("I = %s  (Figure 1's ground instance)\n\n",
              ground.ToString().c_str());

  Narrate(m, catalog::DecompositionQuasiInverseJoin(m), "M'", ground);
  Narrate(m, catalog::DecompositionQuasiInverseSplit(m), "M''", ground);

  // The figure's takeaway: even when the recovered instance V2 contains
  // nulls, re-exporting it loses nothing — the recovered source is
  // "data-exchange equivalent" to the original.
  std::printf(
      "Takeaway: M' recovers the cartesian closure of I exactly; M''\n"
      "recovers an instance with nulls whose re-export is homomorphically\n"
      "equivalent to U. Both are faithful (Theorems 6.7/6.8).\n");
  return 0;
}
