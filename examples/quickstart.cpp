// Quickstart: define a schema mapping, exchange data with the chase,
// compute a quasi-inverse with the paper's algorithm, verify it, and
// recover the exported data.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "chase/chase.h"
#include "core/framework.h"
#include "core/quasi_inverse.h"
#include "core/soundness.h"
#include "dependency/parser.h"
#include "relational/instance_enum.h"

using namespace qimap;

int main() {
  // 1. A schema mapping M = (S, T, Sigma): ternary shipments are
  //    decomposed into two binary views (the paper's Decomposition).
  SchemaMapping m = MustParseMapping(
      /*source=*/"Shipment/3",
      /*target=*/"ByRoute/2, ByCarrier/2",
      "Shipment(origin, carrier, dest) -> "
      "ByRoute(origin, carrier) & ByCarrier(carrier, dest)");
  std::printf("Sigma:\n%s\n", m.ToString().c_str());

  // 2. Exchange data: chase a ground source instance.
  Instance shipments = MustParseInstance(
      m.source, "Shipment(seattle, acme, denver), "
                "Shipment(portland, acme, boise)");
  Instance exported = MustChase(shipments, m);
  std::printf("chase(I) = %s\n\n", exported.ToString().c_str());

  // 3. Compute a quasi-inverse with the paper's algorithm (Theorem 4.1).
  ReverseMapping reverse = MustQuasiInverse(m);
  std::printf("QuasiInverse(M):\n%s\n", reverse.ToString().c_str());

  // 4. Verify it against Definition 3.8 on a bounded instance space.
  FrameworkChecker checker(m, {MakeDomain({"a", "b"}), 2});
  Result<BoundedCheckReport> verdict = checker.CheckGeneralizedInverse(
      reverse, EquivKind::kSimM, EquivKind::kSimM);
  if (!verdict.ok()) {
    std::printf("verification error: %s\n",
                verdict.status().ToString().c_str());
    return 1;
  }
  std::printf("verified as a quasi-inverse: %s\n\n",
              verdict->holds ? "yes" : "no");

  // 5. Recover the data: reverse chase, then re-export and compare
  //    (soundness & faithfulness, Section 6).
  Result<RoundTrip> trip = CheckRoundTrip(m, reverse, shipments);
  if (!trip.ok()) {
    std::printf("round trip error: %s\n", trip.status().ToString().c_str());
    return 1;
  }
  std::printf("recovered %zu candidate source instance(s); first:\n  %s\n",
              trip->recovered.size(),
              trip->recovered.empty()
                  ? "<none>"
                  : trip->recovered[0].ToString().c_str());
  std::printf("round trip sound: %s, faithful: %s\n",
              trip->sound ? "yes" : "no", trip->faithful ? "yes" : "no");
  return trip->sound && trip->faithful && verdict->holds ? 0 : 1;
}
