// Schema-evolution scenario: a CRM migrates customers to a new schema via
// a LAV mapping. The old system is retired; later, an auditor needs the
// legacy view back. Quasi-inverses recover a data-exchange-equivalent
// legacy instance even though the migration is not invertible — and the
// recovery is robust when the legacy schema gains an extra relation
// (Section 1's robustness discussion).
//
// Build & run:  ./build/examples/schema_evolution

#include <cstdio>

#include "chase/chase.h"
#include "core/framework.h"
#include "core/lav_quasi_inverse.h"
#include "core/soundness.h"
#include "dependency/parser.h"
#include "relational/instance_enum.h"

using namespace qimap;

int main() {
  // The migration: the new schema keeps only customer ids in Party
  // (regions were deemed stale and dropped), and normalizes orders into a
  // Purchase table whose surrogate keys are invented by the migration
  // (existential).
  SchemaMapping migration = MustParseMapping(
      "Customer/2, Order/2",
      "Party/1, Purchase/3",
      "Customer(id, region) -> Party(id);"
      "Order(id, item) -> exists pk: Purchase(pk, id, item)");
  std::printf("migration Sigma:\n%s\n", migration.ToString().c_str());

  Instance legacy = MustParseInstance(
      migration.source,
      "Customer(c7, west), Customer(c9, east), "
      "Order(c7, widget), Order(c9, sprocket), Order(c7, gear)");
  Instance migrated = MustChase(legacy, migration);
  std::printf("migrated data = %s\n\n", migrated.ToString().c_str());

  // The migration dropped the region column, so it cannot be inverted
  // exactly; but being LAV it always has a disjunction-free quasi-inverse
  // (Theorem 4.7). The recovered legacy view is data-exchange equivalent
  // to the original: the unrecoverable region column comes back as an
  // arbitrary-but-consistent placeholder, which ~M does not distinguish
  // from the lost truth.
  FrameworkChecker checker(migration, {MakeDomain({"a", "b"}), 2});
  Result<BoundedCheckReport> unique = checker.CheckUniqueSolutions();
  if (unique.ok()) {
    std::printf("exact inverse possible: %s\n",
                unique->holds ? "maybe" : "no (unique solutions fail)");
  }
  ReverseMapping recovery = MustLavQuasiInverse(migration);
  std::printf("recovery mapping (LAV quasi-inverse):\n%s\n",
              recovery.ToString().c_str());
  Result<BoundedCheckReport> verdict = checker.CheckGeneralizedInverse(
      recovery, EquivKind::kSimM, EquivKind::kSimM);
  if (verdict.ok()) {
    std::printf("verified as a quasi-inverse: %s\n\n",
                verdict->holds ? "yes" : "no");
  }

  // Recover the legacy view and audit it.
  Result<RoundTrip> trip = CheckRoundTrip(migration, recovery, legacy);
  if (!trip.ok() || trip->recovered.empty()) {
    std::printf("recovery failed\n");
    return 1;
  }
  std::printf("recovered legacy view:\n  %s\n",
              trip->recovered[0].ToString().c_str());
  std::printf("audit: sound=%s faithful=%s\n\n",
              trip->sound ? "yes" : "no", trip->faithful ? "yes" : "no");

  // Robustness: the legacy schema later gains an ArchivedNote relation
  // that the migration never used. Quasi-inverses survive this schema
  // change (unlike inverses, Section 1).
  SchemaMapping extended = MustParseMapping(
      "Customer/2, Order/2, ArchivedNote/1",
      "Party/1, Purchase/3",
      "Customer(id, region) -> Party(id);"
      "Order(id, item) -> exists pk: Purchase(pk, id, item)");
  ReverseMapping carried = MustLavQuasiInverse(extended);
  FrameworkChecker ext_checker(extended, {MakeDomain({"a", "b"}), 2});
  Result<BoundedCheckReport> still_ok = ext_checker.CheckGeneralizedInverse(
      carried, EquivKind::kSimM, EquivKind::kSimM);
  if (still_ok.ok()) {
    std::printf(
        "after adding ArchivedNote/1 to the legacy schema:\n"
        "recovery still a quasi-inverse: %s\n",
        still_ok->holds ? "yes" : "no");
  }
  return trip->sound && trip->faithful ? 0 : 1;
}
